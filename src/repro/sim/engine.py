"""Event loop, events, timeouts and generator-coroutine processes.

Processes are Python generators that ``yield`` events; the engine resumes a
process with the event's value once it triggers.  A process is itself an
event that triggers with the generator's return value, so processes can wait
on each other and on :class:`AllOf` fan-ins.

Hot-path layout
---------------
The scheduler is the single hottest loop of the whole reproduction (every
disk I/O is three to five events), so its data structures are chosen for
constant factors, and every optimization is constrained to be *bit-identical*:
the pop order of events and the number of scheduled events / process resumes
(both observable through trace hooks and the ``--json`` metric snapshots)
must not change — see DESIGN.md, "The bit-identity constraint".

* Events carry ``__slots__`` and a ``_queued`` flag instead of membership in
  a side ``set`` — no per-event hashing on the schedule/pop path.
* The queue is split into a binary heap for *future* events (timeouts) and a
  FIFO deque for *immediate* events (triggered callbacks, process starts,
  zero-delay timeouts), which dominate the event mix.  Entries are plain
  ``(when, seq, event)`` tuples in both.  Immediate events are appended with
  ``when == now`` and a monotonically increasing ``seq`` while the clock
  only moves forward, so the deque is always sorted by ``(when, seq)`` and
  the global pop order — min of deque head and heap head — is exactly the
  order a single shared heap would produce.
* Event/Timeout/Process construction inlines the base initializer and the
  schedule step: object churn per simulated I/O is a handful of tuple and
  list allocations, with no callback indirection beyond the one stored
  waiter callback.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. yielding a non-event)."""


class Interrupted(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries the interrupter's reason (e.g. the fault event that
    made the wait pointless).  Processes that hold resources across waits
    must release them on this path — the simlint rules RES302/FLT501 and
    the :class:`~repro.sim.resources.Request` context manager exist to
    make that automatic.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event; callbacks fire when it triggers.

    ``_queued`` is True while the event sits in the engine's queue (between
    scheduling and its pop in :meth:`Environment.run`); waiters use it to
    tell a fired-and-drained event from one whose callbacks are still due.
    """

    __slots__ = ("env", "callbacks", "_value", "triggered", "_queued")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self.triggered = False
        self._queued = False

    @property
    def value(self) -> Any:
        """The value the event triggered with."""
        if not self.triggered:
            raise SimulationError("event has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger now (schedules callbacks at the current time)."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        self._queued = True
        env._ready.append((env.now, seq, self))
        hook = env._on_schedule
        if hook is not None:
            hook(env.now, self)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` time units in the future."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self.triggered = True  # pre-armed: nobody may succeed() it again
        self._queued = True
        when = env.now + delay
        env._seq = seq = env._seq + 1
        if when > env.now:
            heapq.heappush(env._queue, (when, seq, self))
        else:
            env._ready.append((when, seq, self))
        hook = env._on_schedule
        if hook is not None:
            hook(when, self)


class Process(Event):
    """Wraps a generator; triggers with the generator's return value.

    A suspended process can be cancelled with :meth:`interrupt`: the
    engine throws :class:`Interrupted` into the generator at its current
    ``yield``, running ``with`` / ``try/finally`` cleanup (releasing or
    cancelling resource grants) on the way out.
    """

    __slots__ = ("_gen", "_hooks", "_target")

    def __init__(self, env: "Environment", gen: Generator):
        if not hasattr(gen, "send"):
            raise SimulationError("process target must be a generator")
        self.env = env
        self.callbacks = []
        self._value = None
        self.triggered = False
        self._queued = False
        self._gen = gen
        self._hooks = env.trace_hooks
        env._processes.append(self)
        # Start the process at the current time.
        start = Event(env)
        start.callbacks.append(self._resume)
        self._target: Event | None = start
        start.triggered = True
        env._seq = seq = env._seq + 1
        start._queued = True
        env._ready.append((env.now, seq, start))
        hook = env._on_schedule
        if hook is not None:
            hook(env.now, start)

    def _finish(self, value: Any) -> None:
        self._target = None
        self.triggered = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        self._queued = True
        env._ready.append((env.now, seq, self))
        hook = env._on_schedule
        if hook is not None:
            hook(env.now, self)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield events")
        if target.triggered and not target.callbacks and not target._queued:
            # Already fired and drained: resume immediately via a fresh hop.
            hop = Event(self.env)
            hop.callbacks.append(self._resume)
            self._target = hop
            hop.succeed(target._value)
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def _resume(self, trigger: Event) -> None:
        if trigger is not self._target:
            # Stale wakeup: the wait was interrupted (or finished) after
            # this event had already been detached for firing.
            return
        hooks = self._hooks
        if hooks is not None:
            hooks.on_resume(self, trigger)
        try:
            target = self._gen.send(trigger._value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        # Inlined _wait_on: EAFP stands in for the isinstance check —
        # anything without an event's callback list is a misuse.
        try:
            cbs = target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process yielded {target!r}; processes must yield "
                f"events") from None
        if target.triggered and not cbs and not target._queued:
            hop = Event(self.env)
            hop.callbacks.append(self._resume)
            self._target = hop
            hop.succeed(target._value)
        else:
            cbs.append(self._resume)
            self._target = target

    def interrupt(self, cause: Any = None) -> bool:
        """Cancel this process's current wait by throwing
        :class:`Interrupted` into its generator.

        The generator's cleanup (``finally`` blocks, ``with`` exits) runs
        immediately.  If the generator catches the interrupt and yields a
        new event, the process keeps running on that event; otherwise it
        finishes, triggering with the :class:`Interrupted` instance as its
        value.  Returns ``False`` (and does nothing) if the process has
        already finished.
        """
        if self.triggered or self._gen.gi_frame is None:
            return False
        target = self._target
        if target is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        try:
            new_target = self._gen.throw(Interrupted(cause))
        except StopIteration as stop:
            self._finish(stop.value)
            return True
        except Interrupted as exc:
            self._finish(exc)
            return True
        self._wait_on(new_target)
        return True


class AllOf(Event):
    """Triggers once every child event has triggered (value: list of values)."""

    __slots__ = ("_waiting", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._waiting = 0
        for ev in self._events:
            if ev.triggered and not ev.callbacks and not ev._queued:
                continue
            self._waiting += 1
            ev.callbacks.append(self._child_done)
        if self._waiting == 0:
            self.succeed([ev._value for ev in self._events])

    def _child_done(self, _ev: Event) -> None:
        self._waiting -= 1
        if self._waiting == 0 and not self.triggered:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Triggers with the first child event's value (a race / select).

    The losing children keep running; racing a wait against an
    ``env.timeout`` and then interrupting the loser is the timeout idiom
    used by the failure-aware repair paths.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("any_of requires at least one event")
        for ev in self._events:
            if ev.triggered and not ev.callbacks and not ev._queued:
                # Already fired and drained: win the race immediately.
                self.succeed(ev._value)
                return
        for ev in self._events:
            ev.callbacks.append(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if not self.triggered:
            self.succeed(ev._value)


class Environment:
    """The simulation clock and event queue.

    ``trace_hooks`` (optional) receives ``on_schedule(when, event)`` for
    every enqueued event and ``on_resume(process, trigger)`` for every
    process resumption — see :class:`repro.obs.EngineHooks`.  The hook is
    bound once at construction (``_on_schedule``), so the untraced hot path
    pays a single ``is not None`` test per scheduled event.

    Future events (positive-delay timeouts) live in the ``_queue`` heap;
    immediate events (callbacks of triggered events, process starts,
    zero-delay timeouts) live in the ``_ready`` FIFO deque.  See the module
    docstring for why popping the smaller of the two heads reproduces the
    single-heap order exactly.
    """

    __slots__ = ("now", "trace_hooks", "_queue", "_ready", "_seq",
                 "_processes", "_on_schedule", "_on_advance")

    def __init__(self, trace_hooks=None):
        self.now: float = 0.0
        self.trace_hooks = trace_hooks
        self._queue: list[tuple[float, int, Event]] = []
        self._ready: deque[tuple[float, int, Event]] = deque()
        self._seq = 0
        self._processes: list[Process] = []
        self._on_schedule = (trace_hooks.on_schedule
                             if trace_hooks is not None else None)
        # Clock-advance hook: a sim-time sampler (repro.obs.timeline) binds
        # a per-environment cursor here.  Duck-typed so the engine never
        # imports the obs layer; the untimed hot path pays one `is not
        # None` test per forward clock move.
        self._on_advance = None
        if trace_hooks is not None:
            timeline = getattr(trace_hooks, "timeline", None)
            if timeline is not None:
                self._on_advance = timeline.bind(self)

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq = seq = self._seq + 1
        event._queued = True
        if when > self.now:
            heapq.heappush(self._queue, (when, seq, event))
        else:
            self._ready.append((when, seq, event))
        hook = self._on_schedule
        if hook is not None:
            hook(when, event)

    def _schedule_callbacks(self, event: Event) -> None:
        self._schedule_at(self.now, event)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after the given delay."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator) -> Process:
        """Start a generator as a process; returns its Process event."""
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when every given event has triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when the first given event triggers."""
        return AnyOf(self, events)

    def run(self, until: Event | float | None = None) -> Any:
        """Run until the given event triggers / time passes / queue drains.

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop_event = until
            deadline = None
        elif until is None:
            stop_event = None
            deadline = None
        else:
            stop_event = None
            deadline = float(until)
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        while True:
            # The next event is the smaller (when, seq) of the two heads;
            # seq values are unique, so the tuple compare never reaches
            # the (incomparable) event objects.
            if ready:
                head = ready[0]
                if queue and queue[0] < head:
                    head = queue[0]
                    in_heap = True
                else:
                    in_heap = False
            elif queue:
                head = queue[0]
                in_heap = True
            else:
                break
            when = head[0]
            if deadline is not None and when > deadline:
                self.now = deadline
                return None
            if in_heap:
                pop(queue)
            else:
                popleft()
            event = head[2]
            event._queued = False
            if when < self.now:
                raise SimulationError(
                    f"sim clock would run backwards: event at t={when!r} "
                    f"popped at t={self.now!r}")
            if when > self.now:
                # The clock only moves here, so a timeline sampler sees
                # every forward advance exactly once, *before* the events
                # at the new time run — it reads registry state as of the
                # interval just closed, and schedules nothing itself.
                advance = self._on_advance
                if advance is not None:
                    advance(when)
                self.now = when
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = []
                for cb in callbacks:
                    cb(event)
            if stop_event is not None and stop_event.triggered:
                return stop_event._value
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError("simulation ran dry before the awaited event")
        if deadline is not None:
            self.now = deadline
        return None

    def close(self) -> None:
        """Close every process generator started in this environment.

        Open-ended processes abandoned at the end of a run (load
        generators, server loops) are otherwise finalized whenever garbage
        collection reaches them — possibly while a *later* environment
        shares their observer, at a moment that depends on the host
        process's allocation history.  Their ``with``-held resource grants
        would then release into someone else's metrics.  Closing here pins
        that cleanup to a deterministic point: releases happen in process
        creation order at this environment's final sim time.
        """
        for process in self._processes:
            process._gen.close()

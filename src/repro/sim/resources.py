"""FIFO and priority resources with utilization accounting.

Usage inside a process::

    req = disk.request(priority=1)
    yield req
    yield env.timeout(service_time)
    disk.release(req)

``Resource`` is strictly FIFO; ``PriorityResource`` serves lower priority
numbers first (FIFO within a priority class) — RCStor's storage servers use
priority lanes to keep foreground reads ahead of background recovery
(§5.1, "IO Scheduling").
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.sim.engine import Environment, Event, SimulationError


class Request(Event):
    """A pending acquisition; triggers when the resource is granted."""

    __slots__ = ("resource", "priority", "granted")

    def __init__(self, env: Environment, resource: "Resource", priority: int):
        super().__init__(env)
        self.resource = resource
        self.priority = priority
        self.granted = False


class Resource:
    """A counted resource with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list[tuple[int, int, Request]] = []
        self._seq = count()
        # Utilization accounting: integral of in_use over time.
        self._usage_integral = 0.0
        self._last_change = env.now

    # ------------------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._usage_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Mean busy fraction (0..capacity) since creation."""
        self._account()
        elapsed = self.env.now
        if elapsed == 0:
            return 0.0
        return self._usage_integral / elapsed / self.capacity

    @property
    def queue_length(self) -> int:
        """Number of waiters queued on this resource."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Request the resource; yields when granted."""
        req = Request(self.env, self, priority)
        if self.in_use < self.capacity and not self._waiters:
            self._grant(req)
        else:
            heapq.heappush(self._waiters, (self._key(priority), next(self._seq), req))
        return req

    def _key(self, priority: int) -> int:
        return 0  # plain Resource ignores priority: strict FIFO

    def _grant(self, req: Request) -> None:
        self._account()
        self.in_use += 1
        req.granted = True
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Release a granted request, waking the next waiter."""
        if not req.granted:
            raise SimulationError("releasing a request that was never granted")
        req.granted = False
        self._account()
        self.in_use -= 1
        if self._waiters and self.in_use < self.capacity:
            _key, _seq, nxt = heapq.heappop(self._waiters)
            self._grant(nxt)


class PriorityResource(Resource):
    """Lower ``priority`` numbers are served first; FIFO within a class."""

    def _key(self, priority: int) -> int:
        return priority

"""FIFO and priority resources with utilization accounting.

Usage inside a process::

    req = disk.request(priority=1)
    yield req
    yield env.timeout(service_time)
    disk.release(req)

``Resource`` is strictly FIFO; ``PriorityResource`` serves lower priority
numbers first (FIFO within a priority class) — RCStor's storage servers use
priority lanes to keep foreground reads ahead of background recovery
(§5.1, "IO Scheduling").

Every :class:`Request` timestamps its creation and grant, so
:attr:`Request.queue_wait` reports queueing delay without callers tracking
sim times by hand.  Passing an :class:`~repro.obs.Observer` (plus a metric
``kind``/``instance``) records per-priority-lane wait-time histograms and
time-weighted queue-depth / in-use gauges; without one the only cost is a
single ``is not None`` test per request/grant/release.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.sim.engine import Environment, Event, SimulationError


class Request(Event):
    """A pending acquisition; triggers when the resource is granted."""

    __slots__ = ("resource", "priority", "granted", "request_time",
                 "grant_time")

    def __init__(self, env: Environment, resource: "Resource", priority: int):
        super().__init__(env)
        self.resource = resource
        self.priority = priority
        self.granted = False
        self.request_time = env.now
        self.grant_time: float | None = None

    @property
    def queue_wait(self) -> float:
        """Sim seconds spent queued (grant time − request time)."""
        if self.grant_time is None:
            raise SimulationError("request has not been granted yet")
        return self.grant_time - self.request_time


class Resource:
    """A counted resource with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1, obs=None,
                 kind: str | None = None, instance: str | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list[tuple[int, int, Request]] = []
        self._seq = count()
        # Utilization accounting: integral of in_use over the lifetime.
        self._usage_integral = 0.0
        self._created = env.now
        self._last_change = env.now
        # Optional metrics (per-lane waits, queue depth, units in use).
        self._obs = obs if (obs is not None and kind is not None) else None
        if self._obs is not None:
            self._kind = kind
            labels = {"dev": instance} if instance is not None else {}
            self._depth_gauge = obs.metrics.gauge(f"{kind}.queue_depth",
                                                  **labels)
            self._in_use_gauge = obs.metrics.gauge(f"{kind}.in_use", **labels)
            self._wait_hists: dict[int, object] = {}

    # ------------------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._usage_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Mean busy fraction (0..1) over the resource's lifetime.

        The lifetime runs from the resource's creation to ``env.now``, so
        resources created mid-simulation are not diluted by time before
        they existed.
        """
        self._account()
        elapsed = self.env.now - self._created
        if elapsed <= 0:
            return 0.0
        return self._usage_integral / elapsed / self.capacity

    @property
    def queue_length(self) -> int:
        """Number of waiters queued on this resource."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Request the resource; yields when granted."""
        req = Request(self.env, self, priority)
        if self.in_use < self.capacity and not self._waiters:
            self._grant(req)
        else:
            heapq.heappush(self._waiters, (self._key(priority), next(self._seq), req))
            if self._obs is not None:
                self._depth_gauge.set(len(self._waiters), self.env.now)
        return req

    def _key(self, priority: int) -> int:
        return 0  # plain Resource ignores priority: strict FIFO

    def _grant(self, req: Request) -> None:
        self._account()
        self.in_use += 1
        req.granted = True
        req.grant_time = self.env.now
        if self._obs is not None:
            self._observe_grant(req)
        req.succeed(req)

    def _observe_grant(self, req: Request) -> None:
        now = self.env.now
        hist = self._wait_hists.get(req.priority)
        if hist is None:
            hist = self._obs.metrics.histogram(f"{self._kind}.queue_wait",
                                               lane=req.priority)
            self._wait_hists[req.priority] = hist
        hist.observe(now - req.request_time)
        self._depth_gauge.set(len(self._waiters), now)
        self._in_use_gauge.set(self.in_use, now)

    def release(self, req: Request) -> None:
        """Release a granted request, waking the next waiter."""
        if not req.granted:
            raise SimulationError("releasing a request that was never granted")
        req.granted = False
        self._account()
        self.in_use -= 1
        if self._obs is not None:
            self._in_use_gauge.set(self.in_use, self.env.now)
        if self._waiters and self.in_use < self.capacity:
            _key, _seq, nxt = heapq.heappop(self._waiters)
            self._grant(nxt)


class PriorityResource(Resource):
    """Lower ``priority`` numbers are served first; FIFO within a class."""

    def _key(self, priority: int) -> int:
        return priority

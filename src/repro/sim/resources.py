"""FIFO and priority resources with utilization accounting.

Usage inside a process::

    req = disk.request(priority=1)
    yield req
    try:
        yield env.timeout(service_time)
    finally:
        disk.release(req)

or, equivalently, with the request as a context manager (released — or
cancelled, if never granted — on every exit path)::

    with disk.request(priority=1) as req:
        yield req
        yield env.timeout(service_time)

``Resource`` is strictly FIFO; ``PriorityResource`` serves lower priority
numbers first (FIFO within a priority class) — RCStor's storage servers use
priority lanes to keep foreground reads ahead of background recovery
(§5.1, "IO Scheduling").

Every :class:`Request` timestamps its creation and grant, so
:attr:`Request.queue_wait` reports queueing delay without callers tracking
sim times by hand.  Releases are strictly once-only: a double release
raises :class:`~repro.sim.engine.SimulationError` instead of silently
corrupting the utilization integral and waking spurious waiters.

Passing an :class:`~repro.obs.Observer` (plus a metric ``kind`` /
``instance``) records per-priority-lane wait-time histograms and
time-weighted queue-depth / in-use gauges; without one the only cost is a
single ``is not None`` test per request/grant/release.  If the observer
carries an :class:`~repro.analysis.InvariantChecker` (``obs.invariants``),
the resource registers itself for the end-of-run grant-leak audit.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.sim.engine import Environment, Event, SimulationError


class Request(Event):
    """A pending acquisition; triggers when the resource is granted."""

    __slots__ = ("resource", "priority", "granted", "released", "cancelled",
                 "request_time", "grant_time")

    def __init__(self, env: Environment, resource: "Resource", priority: int):
        # Inlined Event.__init__ — requests are created once per simulated
        # I/O, so the extra constructor hop is measurable.
        self.env = env
        self.callbacks = []
        self._value = None
        self.triggered = False
        self._queued = False
        self.resource = resource
        self.priority = priority
        self.granted = False
        self.released = False
        self.cancelled = False
        self.request_time = env.now
        self.grant_time: float | None = None

    @property
    def queue_wait(self) -> float:
        """Sim seconds spent queued (grant time − request time)."""
        if self.grant_time is None:
            raise SimulationError("request has not been granted yet")
        return self.grant_time - self.request_time

    def release(self) -> None:
        """Release this grant (same as ``resource.release(request)``)."""
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw this request from the wait queue before it is granted."""
        self.resource.cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.granted and not self.released:
            self.resource.release(self)
        elif not self.granted and not self.cancelled and not self.released:
            self.resource.cancel(self)
        return False


class Resource:
    """A counted resource with a FIFO wait queue."""

    __slots__ = ("env", "capacity", "in_use", "_waiters", "_n_cancelled",
                 "_seq", "_usage_integral", "_created", "_last_change",
                 "_obs", "_kind", "_depth_gauge", "_in_use_gauge",
                 "_wait_hists")

    def __init__(self, env: Environment, capacity: int = 1, obs=None,
                 kind: str | None = None, instance: str | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list[tuple[int, int, Request]] = []
        self._n_cancelled = 0
        self._seq = count()
        # Utilization accounting: integral of in_use over the lifetime.
        self._usage_integral = 0.0
        self._created = env.now
        self._last_change = env.now
        # Optional metrics (per-lane waits, queue depth, units in use).
        self._obs = obs if (obs is not None and kind is not None) else None
        if self._obs is not None:
            self._kind = kind
            labels = {"dev": instance} if instance is not None else {}
            self._depth_gauge = obs.metrics.gauge(f"{kind}.queue_depth",
                                                  **labels)
            self._in_use_gauge = obs.metrics.gauge(f"{kind}.in_use", **labels)
            self._wait_hists: dict[int, object] = {}
        # Optional runtime invariants: register for the grant-leak audit.
        invariants = getattr(obs, "invariants", None) if obs is not None \
            else None
        if invariants is not None:
            invariants.register_resource(self)

    # ------------------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._usage_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Mean busy fraction (0..1) over the resource's lifetime.

        The lifetime runs from the resource's creation to ``env.now``, so
        resources created mid-simulation are not diluted by time before
        they existed.
        """
        self._account()
        elapsed = self.env.now - self._created
        if elapsed <= 0:
            return 0.0
        return self._usage_integral / elapsed / self.capacity

    @property
    def queue_length(self) -> int:
        """Number of live (non-cancelled) waiters queued on this resource."""
        return len(self._waiters) - self._n_cancelled

    # ------------------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Request the resource; yields when granted."""
        req = Request(self.env, self, priority)
        waiters = self._waiters
        if self.in_use < self.capacity and len(waiters) == self._n_cancelled:
            if waiters:  # only cancelled husks remain: drop them
                waiters.clear()
                self._n_cancelled = 0
            self._grant(req)
        else:
            heapq.heappush(waiters, (self._key(priority), next(self._seq), req))
            if self._obs is not None:
                self._depth_gauge.set(self.queue_length, self.env.now)
        return req

    def _key(self, priority: int) -> int:
        return 0  # plain Resource ignores priority: strict FIFO

    def _grant(self, req: Request) -> None:
        # Inlined _account(): grants/releases bound the utilization
        # integral's update rate, and the call overhead shows in profiles.
        now = self.env.now
        self._usage_integral += self.in_use * (now - self._last_change)
        self._last_change = now
        self.in_use += 1
        req.granted = True
        req.grant_time = now
        if self._obs is not None:
            self._observe_grant(req)
        req.succeed(req)

    def _observe_grant(self, req: Request) -> None:
        now = self.env.now
        hist = self._wait_hists.get(req.priority)
        if hist is None:
            hist = self._obs.metrics.histogram(f"{self._kind}.queue_wait",
                                               lane=req.priority)
            self._wait_hists[req.priority] = hist
        hist.observe(now - req.request_time)
        self._depth_gauge.set(self.queue_length, now)
        self._in_use_gauge.set(self.in_use, now)

    def release(self, req: Request) -> None:
        """Release a granted request, waking the next waiter.

        Releases are once-only: releasing the same request twice raises
        instead of corrupting the in-use count and utilization integral.
        """
        if req.resource is not self:
            raise SimulationError("request belongs to a different resource")
        if req.released:
            raise SimulationError(
                "request already released; a double release would corrupt "
                "utilization accounting")
        if req.cancelled:
            raise SimulationError("releasing a cancelled request")
        if not req.granted:
            raise SimulationError("releasing a request that was never granted")
        req.released = True
        req.granted = False
        now = self.env.now
        self._usage_integral += self.in_use * (now - self._last_change)
        self._last_change = now
        self.in_use -= 1
        if self._obs is not None:
            self._in_use_gauge.set(self.in_use, self.env.now)
        while self._waiters and self.in_use < self.capacity:
            _key, _seq, nxt = heapq.heappop(self._waiters)
            if nxt.cancelled:
                self._n_cancelled -= 1
                continue
            self._grant(nxt)
            break

    def cancel(self, req: Request) -> None:
        """Withdraw a queued request before it is granted.

        The husk stays in the wait heap and is skipped (and dropped) when
        it reaches the front; cancelling an already-granted request is an
        error — release it instead.
        """
        if req.resource is not self:
            raise SimulationError("request belongs to a different resource")
        if req.granted or req.released:
            raise SimulationError("cannot cancel a granted request; "
                                  "release it instead")
        if req.cancelled:
            return
        req.cancelled = True
        self._n_cancelled += 1
        if self._obs is not None:
            self._depth_gauge.set(self.queue_length, self.env.now)


class PriorityResource(Resource):
    """Lower ``priority`` numbers are served first; FIFO within a class."""

    __slots__ = ()

    def _key(self, priority: int) -> int:
        return priority

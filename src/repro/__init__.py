"""Geometric Partitioning reproduction (SOSP '21).

A complete, self-contained Python implementation of the paper "Geometric
Partitioning: Explore the Boundary of Optimal Erasure Code Repair" by Shan
et al. — the Geometric Partitioning scheme, the erasure codes it builds on
(RS, LRC, Hitchhiker, and the Clay MSR code, all byte-exact), and a
calibrated discrete-event simulation of the RCStor object store used to
regenerate every table and figure of the paper's evaluation.

Quick start::

    from repro import GeometricPartitioner, ClayCode

    part = GeometricPartitioner(s0=4 << 20, q=2).partition(int(73.5 * 2**20))
    # 73.5 MB -> 1.5 MB front + 2x4 MB + 2x8 MB + 16 MB + 32 MB

See ``examples/`` for runnable end-to-end scenarios and
:mod:`repro.experiments` for the per-table/figure reproductions.
"""

from repro.codes import ClayCode, HitchhikerCode, LRCCode, RSCode, extract_reads
from repro.cluster import ClusterConfig, RCStor
from repro.core import (
    ContiguousLayout,
    GeometricLayout,
    GeometricPartitioner,
    StripeLayout,
    StripeMaxLayout,
)
from repro.trace import W1, W2, AliTraceModel

__version__ = "1.0.0"

__all__ = [
    "ClayCode",
    "HitchhikerCode",
    "LRCCode",
    "RSCode",
    "extract_reads",
    "ClusterConfig",
    "RCStor",
    "ContiguousLayout",
    "GeometricLayout",
    "GeometricPartitioner",
    "StripeLayout",
    "StripeMaxLayout",
    "W1",
    "W2",
    "AliTraceModel",
    "__version__",
]

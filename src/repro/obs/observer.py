"""The Observer: one handle bundling metrics, tracing and engine hooks.

Instrumented code takes an ``obs`` argument defaulting to ``None`` — the
no-observer case costs one ``is not None`` test per operation, which keeps
the simulator's benchmark numbers unchanged when observability is off.

A process-wide *default observer* lets entry points (the experiment CLI's
``--trace`` / ``--metrics`` flags) switch on observability for code paths
that build their own :class:`~repro.cluster.RCStor` systems internally,
without threading an argument through every experiment module.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class EngineHooks:
    """Counts engine activity (wired into :class:`~repro.sim.Environment`).

    When an :class:`~repro.analysis.InvariantChecker` is attached
    (``invariants``), every scheduled event is also checked against the
    monotonic sim-clock invariant.
    """

    __slots__ = ("events_scheduled", "process_resumes", "invariants")

    def __init__(self, metrics: MetricsRegistry):
        self.events_scheduled = metrics.counter("engine.events_scheduled")
        self.process_resumes = metrics.counter("engine.process_resumes")
        self.invariants = None

    def on_schedule(self, when: float, event) -> None:
        """Called whenever the engine enqueues an event."""
        self.events_scheduled.inc()
        if self.invariants is not None:
            self.invariants.on_schedule(when, event)

    def on_resume(self, process, trigger) -> None:
        """Called whenever a process coroutine is resumed."""
        self.process_resumes.inc()


class Observer:
    """A metrics registry plus a span tracer, shared across measurements.

    ``invariants`` (optional, installed by
    :func:`repro.analysis.attach_invariant_checker`) turns on runtime
    invariant checking in every resource and runtime built under this
    observer; the default ``None`` keeps observability side-effect free.
    """

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.engine_hooks = EngineHooks(self.metrics)
        self.invariants = None

    def summary(self) -> str:
        """The registry's plain-text metrics report."""
        return self.metrics.summary()


_default_observer: Observer | None = None


def set_default_observer(obs: Observer | None) -> Observer | None:
    """Install (or clear, with ``None``) the process-wide default observer.

    Returns the previous default so callers can restore it.
    """
    global _default_observer
    previous = _default_observer
    _default_observer = obs
    return previous


def get_default_observer() -> Observer | None:
    """The process-wide default observer, or ``None`` when disabled."""
    return _default_observer


@contextmanager
def observed(obs: Observer | None = None):
    """Context manager: install ``obs`` (a fresh Observer by default) as the
    process-wide default for the duration of the block, yielding it."""
    if obs is None:
        obs = Observer()
    previous = set_default_observer(obs)
    try:
        yield obs
    finally:
        set_default_observer(previous)

"""The Observer: one handle bundling metrics, tracing and engine hooks.

Instrumented code takes an ``obs`` argument defaulting to ``None`` — the
no-observer case costs one ``is not None`` test per operation, which keeps
the simulator's benchmark numbers unchanged when observability is off.

A *context-scoped default observer* lets entry points (the experiment
runner, the CLI's ``--trace`` / ``--metrics`` flags) switch on
observability for code paths that build their own
:class:`~repro.cluster.RCStor` systems internally, without threading an
argument through every experiment module.  The default lives in a
:class:`contextvars.ContextVar`, not a module global: each scenario unit
the runner executes — whether inline or inside a worker process — installs
its own observer with :func:`observed` and ships a summary back, so
parallel and serial runs observe bit-identically.  The legacy
process-global mutators :func:`set_default_observer` /
:func:`get_default_observer` remain as thin deprecated shims over the
context variable.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class EngineHooks:
    """Counts engine activity (wired into :class:`~repro.sim.Environment`).

    When an :class:`~repro.analysis.InvariantChecker` is attached
    (``invariants``), every scheduled event is also checked against the
    monotonic sim-clock invariant.  The second-generation telemetry hooks
    — ``timeline`` (sim-time sampler), ``profiler`` (wall-clock dispatch
    profiler) and ``flightrec`` (postmortem ring buffer) — all default to
    ``None``, so an observer without telemetry costs exactly what it did
    before they existed.
    """

    __slots__ = ("events_scheduled", "process_resumes", "invariants",
                 "timeline", "profiler", "flightrec")

    def __init__(self, metrics: MetricsRegistry):
        self.events_scheduled = metrics.counter("engine.events_scheduled")
        self.process_resumes = metrics.counter("engine.process_resumes")
        self.invariants = None
        self.timeline = None
        self.profiler = None
        self.flightrec = None

    def on_schedule(self, when: float, event) -> None:
        """Called whenever the engine enqueues an event."""
        # Bump the counter slot directly: this runs once per scheduled
        # event (millions per experiment), so even the Counter.inc call
        # is measurable.
        self.events_scheduled.value += 1
        if self.flightrec is not None:
            self.flightrec.on_schedule(when, event)
        if self.invariants is not None:
            self.invariants.on_schedule(when, event)

    def on_resume(self, process, trigger) -> None:
        """Called whenever a process coroutine is resumed."""
        self.process_resumes.value += 1
        if self.profiler is not None:
            self.profiler.on_resume(process)


class Observer:
    """A metrics registry plus a span tracer, shared across measurements.

    ``invariants`` (optional, installed by
    :func:`repro.analysis.attach_invariant_checker`) turns on runtime
    invariant checking in every resource and runtime built under this
    observer; the default ``None`` keeps observability side-effect free.
    The telemetry attachments — ``timeline``, ``profiler``, ``flightrec``
    (installed by :func:`repro.obs.attach_timeline` /
    :func:`repro.obs.attach_profiler` / :func:`repro.obs.attach_flightrec`)
    — follow the same pattern: ``None`` means off, and instrumented code
    reaches them with one attribute load plus an ``is not None`` test.
    """

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.engine_hooks = EngineHooks(self.metrics)
        self.invariants = None
        self.timeline = None
        self.profiler = None
        self.flightrec = None

    def summary(self) -> str:
        """The registry's plain-text metrics report."""
        return self.metrics.summary()


_default_observer: ContextVar[Observer | None] = ContextVar(
    "repro_default_observer", default=None)


def set_default_observer(obs: Observer | None) -> Observer | None:
    """Install (or clear, with ``None``) the default observer.

    Returns the previous default so callers can restore it.

    .. deprecated::
        Use :func:`observed` instead — it scopes the observer to a block
        (and, via :class:`contextvars.ContextVar`, to the current execution
        context), which is what the parallel experiment runner requires.
    """
    warnings.warn(
        "set_default_observer() is deprecated; scope observers with "
        "repro.obs.observed() instead", DeprecationWarning, stacklevel=2)
    previous = _default_observer.get()
    _default_observer.set(obs)
    return previous


def get_default_observer() -> Observer | None:
    """The context's default observer, or ``None`` when disabled."""
    return _default_observer.get()


@contextmanager
def observed(obs: Observer | None = None):
    """Context manager: install ``obs`` (a fresh Observer by default) as the
    context-scoped default for the duration of the block, yielding it."""
    if obs is None:
        obs = Observer()
    token = _default_observer.set(obs)
    try:
        yield obs
    finally:
        _default_observer.reset(token)

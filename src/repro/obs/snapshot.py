"""Shippable observer snapshots and their merge.

The experiment runner executes scenario units in worker processes; a live
:class:`~repro.obs.observer.Observer` (engine hooks, span lists, metric
objects) cannot cross the process boundary, and even in-process, one shared
registry would make metric contents depend on unit execution order.  So
each unit observes into its *own* observer and ships back a plain-dict
:func:`snapshot`; the parent merges any number of snapshots with
:func:`merge_snapshots` and renders the union with :func:`summarize`.

Snapshots are deterministic: counters, gauge statistics, histogram
statistics and the (deterministically sampled) histogram reservoir are all
pure functions of the simulated work, so a unit's snapshot is bit-identical
whether it ran serially, in a pool, or came back from the result cache.

Merge semantics:

* counters — summed exactly;
* histograms — ``count``/``total``/``min``/``max`` merged exactly;
  percentiles re-estimated from the concatenated (capped) reservoirs;
* gauges — ``min``/``max`` merged exactly; the reported mean is the
  unweighted mean of the per-unit time-weighted means (units simulate
  disjoint sim-time windows, so no exact cross-unit integral exists);
* spans — counted, and optionally shipped as Chrome trace events, which
  :func:`merge_trace_events` rebases onto disjoint pid ranges.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.export import chrome_trace_events
from repro.obs.observer import Observer
from repro.obs.metrics import Counter, Gauge, Histogram

#: Largest histogram reservoir a snapshot ships per metric.  Kept small so
#: result-cache artifacts stay compact; sampling is deterministic (evenly
#: spaced over the sorted reservoir) so snapshots replay identically.
RESERVOIR_SHIP_CAP = 256


def _ship_reservoir(values: list[float]) -> list[float]:
    ordered = sorted(values)
    if len(ordered) <= RESERVOIR_SHIP_CAP:
        return ordered
    step = (len(ordered) - 1) / (RESERVOIR_SHIP_CAP - 1)
    return [ordered[round(i * step)] for i in range(RESERVOIR_SHIP_CAP)]


def snapshot(obs: Observer, include_trace: bool = False) -> dict[str, Any]:
    """A JSON-safe summary of everything ``obs`` recorded."""
    counters: dict[str, float] = {}
    gauges: dict[str, dict[str, float]] = {}
    histograms: dict[str, dict[str, Any]] = {}
    for key, metric in obs.metrics:
        if isinstance(metric, Counter):
            counters[key] = metric.value
        elif isinstance(metric, Gauge):
            gauges[key] = {"last": metric.value, "mean": metric.mean(),
                           "min": metric.min, "max": metric.max}
        elif isinstance(metric, Histogram):
            histograms[key] = {
                "count": metric.count, "total": metric.total,
                "min": metric.min if metric.count else 0.0,
                "max": metric.max if metric.count else 0.0,
                "reservoir": _ship_reservoir(metric._reservoir),
            }
    # Sim time per trace process (each measurement restarts its clock);
    # the sum is the total simulated seconds this unit covered.
    ends: dict[int, float] = {}
    for span in obs.tracer.spans:
        if span.end > ends.get(span.pid, 0.0):
            ends[span.pid] = span.end
    snap: dict[str, Any] = {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "n_spans": len(obs.tracer.spans),
        "sim_time_s": sum(ends.values()),
    }
    if include_trace:
        snap["trace_events"] = chrome_trace_events(obs.tracer)
    # Optional telemetry rides along only when armed: the keys are absent
    # otherwise, so default snapshots stay byte-identical with telemetry
    # code merely present.
    timeline = getattr(obs, "timeline", None)
    if timeline is not None:
        snap["timeline"] = timeline.timeline_doc()
    profiler = getattr(obs, "profiler", None)
    if profiler is not None:
        snap["profile"] = profiler.profile_doc()
    return snap


def merge_snapshots(snaps: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-unit snapshots into one aggregate snapshot dict."""
    counters: dict[str, float] = {}
    gauges: dict[str, dict[str, float]] = {}
    histograms: dict[str, dict[str, Any]] = {}
    n_spans = 0
    sim_time = 0.0
    for snap in snaps:
        if not snap:
            continue
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, g in snap.get("gauges", {}).items():
            agg = gauges.setdefault(
                key, {"last": 0.0, "_mean_sum": 0.0, "_units": 0,
                      "min": math.inf, "max": -math.inf})
            agg["last"] = g["last"]
            agg["_mean_sum"] += g["mean"]
            agg["_units"] += 1
            agg["min"] = min(agg["min"], g["min"])
            agg["max"] = max(agg["max"], g["max"])
        for key, h in snap.get("histograms", {}).items():
            agg = histograms.setdefault(
                key, {"count": 0, "total": 0.0, "min": math.inf,
                      "max": -math.inf, "reservoir": []})
            agg["count"] += h["count"]
            agg["total"] += h["total"]
            if h["count"]:
                agg["min"] = min(agg["min"], h["min"])
                agg["max"] = max(agg["max"], h["max"])
            agg["reservoir"].extend(h.get("reservoir", ()))
        n_spans += snap.get("n_spans", 0)
        sim_time += snap.get("sim_time_s", 0.0)
    for agg in gauges.values():
        agg["mean"] = agg.pop("_mean_sum") / max(agg.pop("_units"), 1)
    for agg in histograms.values():
        if not agg["count"]:
            agg["min"] = agg["max"] = 0.0
        agg["reservoir"].sort()
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms, "n_spans": n_spans,
            "sim_time_s": sim_time}


def _quantile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(merged: dict[str, Any]) -> str:
    """Plain-text report of a (merged) snapshot, in the same shape as
    :meth:`~repro.obs.metrics.MetricsRegistry.summary`."""
    lines: list[str] = []
    counters = merged.get("counters", {})
    gauges = merged.get("gauges", {})
    histograms = merged.get("histograms", {})
    if counters:
        lines.append("== counters ==")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            lines.append(f"{key.ljust(width)}  {counters[key]:g}")
    if gauges:
        if lines:
            lines.append("")
        lines.append("== gauges (time-weighted, merged over units) ==")
        width = max(len(k) for k in gauges)
        for key in sorted(gauges):
            g = gauges[key]
            lines.append(f"{key.ljust(width)}  last={g['last']:.4g} "
                         f"mean={g['mean']:.4g} min={g['min']:.4g} "
                         f"max={g['max']:.4g}")
    if histograms:
        if lines:
            lines.append("")
        lines.append("== histograms ==")
        width = max(len(k) for k in histograms)
        for key in sorted(histograms):
            h = histograms[key]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            p50 = _quantile(h["reservoir"], 0.50)
            p95 = _quantile(h["reservoir"], 0.95)
            p99 = _quantile(h["reservoir"], 0.99)
            lines.append(
                f"{key.ljust(width)}  count={h['count']} mean={mean:.4g} "
                f"p50={p50:.4g} p95={p95:.4g} p99={p99:.4g} "
                f"max={h['max']:.4g}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def merge_trace_events(event_lists: list[list[dict[str, Any]]]
                       ) -> list[dict[str, Any]]:
    """Concatenate per-unit Chrome trace events onto disjoint pid ranges.

    Every unit's tracer numbers its processes from zero; rebasing keeps each
    unit's measurements as separate Perfetto process groups in one file.
    """
    merged: list[dict[str, Any]] = []
    base = 0
    for events in event_lists:
        if not events:
            continue
        top = 0
        for event in events:
            pid = event.get("pid", 0)
            top = max(top, pid)
            rebased = dict(event)
            rebased["pid"] = pid + base
            merged.append(rebased)
        base += top + 1
    return merged

"""Chrome / Perfetto trace-event JSON export.

Converts a :class:`~repro.obs.tracer.Tracer` into the `trace event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by ``chrome://tracing`` and https://ui.perfetto.dev: complete
("X") events for spans, counter ("C") events for sampled levels, and
metadata ("M") events naming each measurement's process and tracks.

Sim time is in seconds; trace timestamps are microseconds, so one simulated
second renders as one second on the Perfetto timeline.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.tracer import Tracer

_US = 1e6  # sim seconds -> trace microseconds


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """The tracer's contents as a list of trace-event dicts."""
    events: list[dict[str, Any]] = []
    for pid, label in enumerate(tracer.processes):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
        events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                       "tid": 0, "args": {"sort_index": pid}})
    for pid, tid, name in tracer.tracks:
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    for span in tracer.spans:
        event: dict[str, Any] = {
            "ph": "X", "name": span.name, "cat": "sim",
            "pid": span.pid, "tid": span.tid,
            "ts": span.start * _US, "dur": span.duration * _US,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for pid, name, now, value in tracer.counter_samples:
        events.append({"ph": "C", "name": name, "cat": "sim", "pid": pid,
                       "tid": 0, "ts": now * _US, "args": {name: value}})
    return events


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The full JSON-object form of the trace."""
    return {"traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the number of span events."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh)
    return len(tracer.spans)

"""Self-contained HTML run reports and cross-run diffs.

:func:`render_report` turns one *report document* — a plain JSON-safe dict
assembled by the experiment CLI (rendered section text, the merged
observability snapshot, and optionally a timeline doc, a profile doc, a
bench doc and Chrome trace events) — into a single HTML file with no
external assets: inline CSS, inline SVG timeline charts, a span
waterfall, SLO/percentile tables and the profiler flame table.  Open it
from a CI artifact or ``file://`` and everything renders.

:func:`diff_docs` compares two machine-readable run artifacts — either
two ``--json`` result documents or two ``--bench-out`` documents — and
:func:`render_diff` reports per-metric deltas (absolute and relative) per
experiment row, so "what changed between these two runs" is one HTML
table instead of a ``jq`` session.

This module lives in the ``obs`` layer and therefore works on plain
dicts only — it never imports the runner or the experiments; they feed
it documents.  ``python -m repro.obs.report A.json B.json -o diff.html``
is the standalone diff entry point.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from typing import Any, Iterable

#: Line colors for SVG chart series (cycled).
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
            "#8c564b", "#17becf", "#7f7f7f")

#: Rendering caps: a report stays readable (and finite) no matter how
#: large the run was.  Every cap is annotated in the output.
MAX_SEGMENTS = 12
MAX_SERIES_PER_CHART = 8
MAX_WATERFALL_SPANS = 80
MAX_TABLE_ROWS = 60

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1a1a2e; }
h2 { font-size: 1.2em; margin-top: 2em; }
h3 { font-size: 1em; color: #444; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th { background: #f0f0f5; }
td.l, th.l { text-align: left; font-family: ui-monospace, monospace; }
pre { background: #f7f7fa; padding: 0.8em; overflow-x: auto;
      border: 1px solid #e0e0e8; }
svg { background: #fcfcfe; border: 1px solid #e0e0e8; margin: 0.4em 0; }
.meta { color: #666; font-size: 0.9em; }
.up { color: #b00020; } .down { color: #006400; }
.note { color: #888; font-size: 0.85em; font-style: italic; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------
def _polyline_chart(title: str, t: list[float],
                    series: list[tuple[str, list[float]]],
                    marks: list[dict[str, Any]] | None = None,
                    width: int = 660, height: int = 200) -> str:
    """One SVG line chart: sim time on x, the series on a shared y scale."""
    if not t or not series:
        return ""
    pad_l, pad_r, pad_t, pad_b = 52, 8, 22, 20
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    t0, t1 = t[0], t[-1]
    t_span = (t1 - t0) or 1.0
    lo = min(min(v) for _n, v in series)
    hi = max(max(v) for _n, v in series)
    if hi == lo:
        hi = lo + 1.0
    y_span = hi - lo

    def sx(x: float) -> float:
        return pad_l + (x - t0) / t_span * plot_w

    def sy(y: float) -> float:
        return pad_t + (hi - y) / y_span * plot_h

    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" role="img">',
             f'<text x="{pad_l}" y="14" font-size="12" '
             f'font-weight="bold">{_esc(title)}</text>']
    # Frame and y-axis labels.
    parts.append(f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" '
                 f'height="{plot_h}" fill="none" stroke="#bbb"/>')
    for frac in (0.0, 0.5, 1.0):
        y = lo + frac * y_span
        parts.append(f'<text x="{pad_l - 4}" y="{sy(y) + 4:.1f}" '
                     f'font-size="10" text-anchor="end">{y:.4g}</text>')
    for frac in (0.0, 1.0):
        x = t0 + frac * t_span
        parts.append(f'<text x="{sx(x):.1f}" y="{height - 6}" font-size="10" '
                     f'text-anchor="middle">{x:.4g}s</text>')
    # Fault/incident marks: vertical dashed lines.
    for mark in (marks or ())[:24]:
        mx = sx(mark.get("t", t0))
        parts.append(f'<line x1="{mx:.1f}" y1="{pad_t}" x2="{mx:.1f}" '
                     f'y2="{pad_t + plot_h}" stroke="#c03" '
                     'stroke-dasharray="3,3"><title>'
                     f'{_esc(mark.get("name", "mark"))} @ '
                     f'{mark.get("t", 0):.4g}s</title></line>')
    # Series.
    for i, (name, values) in enumerate(series):
        color = _PALETTE[i % len(_PALETTE)]
        points = " ".join(f"{sx(x):.1f},{sy(v):.1f}"
                          for x, v in zip(t, values))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5">'
                     f'<title>{_esc(name)}</title></polyline>')
        ly = pad_t + 12 + 12 * i
        if ly < pad_t + plot_h:
            parts.append(f'<rect x="{pad_l + plot_w - 150}" y="{ly - 8}" '
                         f'width="9" height="9" fill="{color}"/>')
            parts.append(f'<text x="{pad_l + plot_w - 138}" y="{ly}" '
                         f'font-size="10">{_esc(name[:26])}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _waterfall(events: list[dict[str, Any]],
               width: int = 660, row_h: int = 14) -> str:
    """Span waterfall from Chrome "X" events: longest spans, by process."""
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        return ""
    names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            names[e.get("pid", 0)] = e.get("args", {}).get("name", "")
    spans.sort(key=lambda e: (-e.get("dur", 0.0), e.get("ts", 0.0)))
    spans = spans[:MAX_WATERFALL_SPANS]
    spans.sort(key=lambda e: (e.get("pid", 0), e.get("ts", 0.0)))
    t0 = min(e.get("ts", 0.0) for e in spans)
    t1 = max(e.get("ts", 0.0) + e.get("dur", 0.0) for e in spans)
    span_t = (t1 - t0) or 1.0
    pad_l = 4
    plot_w = width - 2 * pad_l
    height = row_h * len(spans) + 24
    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" role="img">']
    last_pid = None
    for i, e in enumerate(spans):
        pid = e.get("pid", 0)
        x = pad_l + (e.get("ts", 0.0) - t0) / span_t * plot_w
        w = max(1.0, e.get("dur", 0.0) / span_t * plot_w)
        y = 18 + i * row_h
        color = _PALETTE[pid % len(_PALETTE)]
        label = e.get("name", "")
        if pid != last_pid:
            last_pid = pid
            parts.append(f'<text x="{pad_l}" y="{y - 2}" font-size="9" '
                         f'fill="#888">{_esc(names.get(pid, f"pid {pid}"))}'
                         "</text>")
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{row_h - 3}" fill="{color}" fill-opacity="0.8">'
            f'<title>{_esc(label)}: {e.get("dur", 0.0) / 1e6:.6g}s @ '
            f'{e.get("ts", 0.0) / 1e6:.6g}s</title></rect>')
        if w > 60:
            parts.append(f'<text x="{x + 3:.1f}" y="{y + row_h - 5:.1f}" '
                         f'font-size="9" fill="#fff">{_esc(label[:24])}'
                         "</text>")
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------
_LEFT = ' class="l"'


def _table(headers: list[str], rows: Iterable[list[Any]],
           left_cols: int = 1) -> str:
    head = "".join(
        f"<th{_LEFT if i < left_cols else ''}>{_esc(h)}</th>"
        for i, h in enumerate(headers))
    body = []
    for row in rows:
        cells = "".join(
            f"<td{_LEFT if i < left_cols else ''}>{_esc(_fmt(cell))}</td>"
            for i, cell in enumerate(row))
        body.append(f"<tr>{cells}</tr>")
    return (f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{"".join(body)}</tbody></table>')


def _timeline_section(doc: dict[str, Any]) -> str:
    segments = doc.get("segments", ())
    parts = ["<h2>Timelines (sim time)</h2>"]
    if len(segments) > MAX_SEGMENTS:
        parts.append(f'<p class="note">showing {MAX_SEGMENTS} of '
                     f"{len(segments)} segments</p>")
    for seg in segments[:MAX_SEGMENTS]:
        t = seg.get("t", [])
        if not t:
            continue
        parts.append(f"<h3>{_esc(seg.get('label', 'run'))} "
                     f'<span class="meta">(interval '
                     f"{seg.get('interval', 0):.4g}s, {len(t)} samples, "
                     f"{len(seg.get('marks', []))} marks)</span></h3>")
        marks = seg.get("marks", [])

        def top_series(columns: dict[str, list[float]]):
            ranked = sorted(columns.items(),
                            key=lambda kv: (-abs(kv[1][-1]), kv[0]))
            return [(k, v) for k, v in ranked[:MAX_SERIES_PER_CHART]]

        counters = top_series(seg.get("counters", {}))
        if counters:
            parts.append(_polyline_chart("counters (cumulative)", t,
                                         counters, marks))
        gauges = top_series(seg.get("gauges", {}))
        if gauges:
            parts.append(_polyline_chart("gauges (level)", t, gauges, marks))
        hists = seg.get("histograms", {})
        p99 = [(k, v["p99"]) for k, v in sorted(hists.items())
               if v.get("p99")][:MAX_SERIES_PER_CHART]
        if p99:
            parts.append(_polyline_chart("histogram p99", t, p99, marks))
    return "".join(parts)


def _slo_section(obs: dict[str, Any]) -> str:
    parts = ["<h2>Metrics</h2>"]
    hists = obs.get("histograms", {})
    if hists:
        from repro.obs.snapshot import _quantile

        rows = []
        for key in sorted(hists)[:MAX_TABLE_ROWS]:
            h = hists[key]
            res = h.get("reservoir", [])
            mean = h["total"] / h["count"] if h.get("count") else 0.0
            rows.append([key, h.get("count", 0), f"{mean:.6g}",
                         f"{_quantile(res, 0.50):.6g}",
                         f"{_quantile(res, 0.95):.6g}",
                         f"{_quantile(res, 0.99):.6g}",
                         f"{h.get('max', 0.0):.6g}"])
        parts.append("<h3>Latency / wait percentiles</h3>")
        parts.append(_table(["histogram", "count", "mean", "p50", "p95",
                             "p99", "max"], rows))
    counters = obs.get("counters", {})
    if counters:
        parts.append("<h3>Counters</h3>")
        parts.append(_table(
            ["counter", "value"],
            [[k, f"{counters[k]:g}"]
             for k in sorted(counters)[:MAX_TABLE_ROWS]]))
    gauges = obs.get("gauges", {})
    if gauges:
        parts.append("<h3>Gauges (time-weighted)</h3>")
        parts.append(_table(
            ["gauge", "last", "mean", "min", "max"],
            [[k, f"{g['last']:.6g}", f"{g['mean']:.6g}",
              f"{g['min']:.6g}", f"{g['max']:.6g}"]
             for k, g in ((k, gauges[k])
                          for k in sorted(gauges)[:MAX_TABLE_ROWS])]))
    return "".join(parts)


def _profile_section(doc: dict[str, Any]) -> str:
    rows = doc.get("sites", ())[:MAX_TABLE_ROWS]
    if not rows:
        return ""
    attributed = doc.get("attributed_wall_s", 0.0) or 0.0
    parts = ["<h2>Profile (wall clock)</h2>",
             f'<p class="meta">total {doc.get("total_wall_s", 0.0):.3f}s, '
             f"attributed {attributed:.3f}s</p>"]
    parts.append(_table(
        ["process site", "wall s", "share", "resumes"],
        [[r["site"], f"{r['wall_s']:.4f}",
          f"{(r['wall_s'] / attributed if attributed else 0.0):.1%}",
          r["resumes"]] for r in rows]))
    return "".join(parts)


def _bench_section(doc: dict[str, Any]) -> str:
    totals = doc.get("totals")
    if not totals:
        return ""
    parts = ["<h2>Execution</h2>"]
    parts.append(_table(
        ["units", "misses", "hits", "dedups", "hit rate", "wall s",
         "sim time s"],
        [[totals.get("units", 0), totals.get("misses", 0),
          totals.get("hits", 0), totals.get("dedups", 0),
          f"{totals.get('hit_rate', 0.0):.2f}",
          f"{totals.get('wall_s', 0.0):.2f}",
          f"{totals.get('sim_time_s', 0.0):.2f}"]], left_cols=0))
    return "".join(parts)


def render_report(doc: dict[str, Any]) -> str:
    """One report document -> a self-contained HTML page."""
    title = doc.get("title", "repro run report")
    parts = ["<!doctype html><html><head><meta charset='utf-8'>",
             f"<title>{_esc(title)}</title><style>{_CSS}</style></head>",
             f"<body><h1>{_esc(title)}</h1>",
             f'<p class="meta">sim version {_esc(doc.get("sim_version", "?"))}'
             f' &middot; root seed {_esc(doc.get("root_seed", "?"))}</p>']
    for section in doc.get("sections", ()):
        parts.append(f"<h2>{_esc(section.get('name', ''))}</h2>")
        parts.append(f"<pre>{_esc(section.get('text', ''))}</pre>")
    timeline = doc.get("timeline")
    if timeline and timeline.get("segments"):
        parts.append(_timeline_section(timeline))
    events = doc.get("trace_events")
    if events:
        parts.append("<h2>Span waterfall (longest spans)</h2>")
        parts.append(_waterfall(events))
    obs = doc.get("obs")
    if obs:
        parts.append(_slo_section(obs))
    profile = doc.get("profile")
    if profile:
        parts.append(_profile_section(profile))
    bench = doc.get("bench")
    if bench:
        parts.append(_bench_section(bench))
    parts.append("</body></html>")
    return "".join(parts)


def write_report(doc: dict[str, Any], path: str) -> str:
    """Render and write the report; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(doc))
    return path


# ----------------------------------------------------------------------
# Cross-run diff
# ----------------------------------------------------------------------
def _rows_by_unit(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Flatten a ``--json`` results doc into name -> averaged numeric row."""
    out: dict[str, dict[str, Any]] = {}
    for exp, results in doc.get("experiments", {}).items():
        for result in results:
            merged: dict[str, Any] = {}
            rows = result.get("rows", [])
            for row in rows:
                for key, value in row.items():
                    if isinstance(value, bool) or not isinstance(
                            value, (int, float)):
                        continue
                    merged[key] = merged.get(key, 0.0) + value / len(rows)
            out[result.get("name", exp)] = merged
    return out


def _bench_by_unit(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {u["name"]: {"wall_s": u.get("wall_s", 0.0)}
            for u in doc.get("units", ())}


def diff_docs(doc_a: dict[str, Any],
              doc_b: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-metric deltas between two result or bench JSON documents.

    Returns a flat list of ``{unit, metric, a, b, delta, ratio}`` records,
    one per numeric metric present in either run (missing side -> None),
    sorted by |relative change| descending so the biggest movement leads.
    """
    if "experiments" in doc_a or "experiments" in doc_b:
        units_a, units_b = _rows_by_unit(doc_a), _rows_by_unit(doc_b)
    else:
        units_a, units_b = _bench_by_unit(doc_a), _bench_by_unit(doc_b)
    records: list[dict[str, Any]] = []
    for unit in sorted(set(units_a) | set(units_b)):
        row_a = units_a.get(unit, {})
        row_b = units_b.get(unit, {})
        for metric in sorted(set(row_a) | set(row_b)):
            a = row_a.get(metric)
            b = row_b.get(metric)
            delta = (b - a) if (a is not None and b is not None) else None
            ratio = (b / a) if (a not in (None, 0) and b is not None) else None
            records.append({"unit": unit, "metric": metric, "a": a, "b": b,
                            "delta": delta, "ratio": ratio})
    records.sort(key=lambda r: (-(abs(r["ratio"] - 1.0)
                                  if r["ratio"] is not None else float("inf")),
                                r["unit"], r["metric"]))
    return records


def render_diff(doc_a: dict[str, Any], doc_b: dict[str, Any],
                label_a: str = "A", label_b: str = "B") -> str:
    """Two run documents -> a self-contained HTML diff page."""
    records = diff_docs(doc_a, doc_b)
    changed = [r for r in records if r["delta"] is None or r["delta"] != 0]
    rows = []
    for r in changed[:400]:
        if r["ratio"] is not None:
            pct = r["ratio"] - 1.0
            cls = "up" if pct > 0 else "down"
            rel = f'<span class="{cls}">{pct:+.2%}</span>'
        else:
            rel = "&mdash;"
        rows.append([r["unit"], r["metric"],
                     "&mdash;" if r["a"] is None else f"{r['a']:.6g}",
                     "&mdash;" if r["b"] is None else f"{r['b']:.6g}",
                     "&mdash;" if r["delta"] is None else f"{r['delta']:+.6g}",
                     rel])
    # The delta/rel cells carry markup, so this table is built by hand
    # rather than through _table (which escapes every cell).
    head = "".join(f"<th{_LEFT if i < 2 else ''}>{_esc(h)}</th>"
                   for i, h in enumerate(
                       ["unit", "metric", label_a, label_b, "delta", "rel"]))
    trs = []
    for row in rows:
        tds = (f'<td class="l">{_esc(row[0])}</td>'
               f'<td class="l">{_esc(row[1])}</td>'
               + "".join(f"<td>{cell}</td>" for cell in row[2:]))
        trs.append(f"<tr>{tds}</tr>")
    body = (f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{"".join(trs)}</tbody></table>'
            if rows else "<p>No numeric differences.</p>")
    identical = len(changed) == 0
    return ("<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>run diff</title><style>{_CSS}</style></head><body>"
            f"<h1>Run diff: {_esc(label_a)} vs {_esc(label_b)}</h1>"
            f'<p class="meta">{len(records)} metrics compared, '
            f"{len(changed)} changed"
            f"{' — runs are numerically identical' if identical else ''}</p>"
            f"{body}</body></html>")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render an HTML run report, or diff two run JSON docs.")
    parser.add_argument("doc", help="result/bench JSON document")
    parser.add_argument("other", nargs="?", default=None,
                        help="second document: renders a cross-run diff")
    parser.add_argument("-o", "--out", default="report.html",
                        help="output HTML path (default report.html)")
    args = parser.parse_args(argv)
    with open(args.doc, encoding="utf-8") as fh:
        doc_a = json.load(fh)
    if args.other is None:
        page = render_report(doc_a if "sections" in doc_a
                             else {"title": args.doc, "obs": doc_a.get("obs"),
                                   "bench": doc_a})
    else:
        with open(args.other, encoding="utf-8") as fh:
            doc_b = json.load(fh)
        page = render_diff(doc_a, doc_b, label_a=args.doc,
                           label_b=args.other)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(page)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

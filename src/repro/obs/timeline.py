"""Deterministic sim-time telemetry timelines.

End-of-run snapshots (:mod:`repro.obs.snapshot`) answer "how much in
total"; this module answers "how did it evolve".  A :class:`Timeline` is a
sim-time sampler driven by the engine's clock-advance hook: every
:class:`~repro.sim.Environment` built under a timeline-carrying observer
binds a per-environment cursor, and whenever the sim clock moves forward
past the next sample tick the cursor records the registry's current state
— counter values, gauge levels, histogram counts and rolling reservoir
percentiles — into column-oriented series.

**Deterministic by construction.**  Sampling is keyed to *simulated* time
(a fixed ``sample_interval`` grid), never the wall clock, and the cursor
schedules no events of its own: the engine calls it while advancing the
clock, before the events at the new time run.  The event count, pop order
and every simulated number are therefore bit-identical with the timeline
on or off, and a unit's timeline is bit-identical whether it ran inline,
in a worker pool, or serially — which is what makes
:func:`merge_timelines` an exact, order-preserving concatenation across
``--jobs`` workers (see DESIGN.md, "Sim-time sampling vs wall-clock
sampling").

**Bounded by decimation.**  With no ``sample_interval`` given, the cursor
auto-scales: the first clock advance seeds the interval, and whenever a
segment reaches :data:`MAX_SAMPLES` ticks it is decimated to every second
sample and the interval doubles.  Long runs therefore cost a bounded
number of samples while short runs keep fine resolution — and the
decimation, being a pure function of the (deterministic) advance sequence,
preserves bit-identity.

Counters and gauges are aggregated over label variants by base metric name
(``disk.queue_depth{dev=3}`` folds into ``disk.queue_depth``) — the
evolving total is the plottable quantity.  Histograms keep their full
labelled key (priority lanes matter for the SLO view) and sample
``count`` / ``p50`` / ``p95`` / ``p99`` columns, re-estimating percentiles
from the deterministic reservoir only on ticks where the count moved.

:meth:`Timeline.mark` drops named point annotations (the fault injector
marks every injected event) onto the owning environment's segment.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Timeline document schema identifier.
TIMELINE_SCHEMA = "repro.timeline/1"

#: A segment decimates (and doubles its interval) upon reaching this many
#: samples, so even week-long simulated runs ship a bounded series.
MAX_SAMPLES = 512

#: Fallback first interval when auto-scaling and the very first clock
#: advance lands at t=0 (cannot seed an interval from it).
_MIN_INTERVAL = 1e-9


def _base_name(key: str) -> str:
    """``disk.queue_depth{dev=3}`` -> ``disk.queue_depth``."""
    return key.split("{", 1)[0]


class _Cursor:
    """One environment's sample series (its sim clock restarts at zero)."""

    __slots__ = ("_registry", "label", "interval", "_next", "t",
                 "counters", "gauges", "histograms", "marks",
                 "_metric_cache", "_cache_len", "_hist_state")

    def __init__(self, registry: MetricsRegistry,
                 interval: float | None):
        self._registry = registry
        self.label = "run"
        self.interval = interval
        self._next: float | None = None
        self.t: list[float] = []
        self.counters: dict[str, list[float]] = {}
        self.gauges: dict[str, list[float]] = {}
        #: key -> {"count": [...], "p50": [...], "p95": [...], "p99": [...]}
        self.histograms: dict[str, dict[str, list[float]]] = {}
        self.marks: list[dict[str, Any]] = []
        self._metric_cache: list[tuple[str, Any]] = []
        self._cache_len = -1
        #: key -> (count at last percentile estimate, (p50, p95, p99)).
        self._hist_state: dict[str, tuple[int, tuple[float, float, float]]] = {}

    # ------------------------------------------------------------------
    def on_advance(self, when: float) -> None:
        """Engine hook: the sim clock is about to move forward to ``when``.

        Samples every tick in ``(previous now, when]`` against the current
        registry state — the state that held over that whole interval,
        since no event between the ticks has run yet.
        """
        if self.interval is None:
            # Auto-scale: the first forward move seeds the grid pitch.
            self.interval = when if when > 0 else _MIN_INTERVAL
        if self._next is None:
            self._next = self.interval
        while self._next <= when:
            self._sample(self._next)
            self._next += self.interval
            if len(self.t) >= MAX_SAMPLES:
                self._decimate()

    def _sample(self, tick: float) -> None:
        if self._cache_len != len(self._registry):
            self._metric_cache = list(self._registry)
            self._cache_len = len(self._registry)
        self.t.append(tick)
        n = len(self.t)
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        for key, metric in self._metric_cache:
            if isinstance(metric, Counter):
                base = _base_name(key)
                counters[base] = counters.get(base, 0) + metric.value
            elif isinstance(metric, Gauge):
                base = _base_name(key)
                gauges[base] = gauges.get(base, 0.0) + metric.value
            elif isinstance(metric, Histogram):
                self._sample_histogram(key, metric, n)
        for base, value in counters.items():
            self._column(self.counters, base, n).append(value)
        for base, value in gauges.items():
            self._column(self.gauges, base, n).append(value)

    def _sample_histogram(self, key: str, metric: Histogram, n: int) -> None:
        last = self._hist_state.get(key)
        if last is not None and last[0] == metric.count:
            pcts = last[1]
        else:
            pcts = metric.percentiles()
            self._hist_state[key] = (metric.count, pcts)
        series = self.histograms.get(key)
        if series is None:
            series = {"count": [], "p50": [], "p95": [], "p99": []}
            self.histograms[key] = series
        pad = n - 1 - len(series["count"])
        if pad:
            # Metric born mid-run: backfill the ticks before its creation.
            for col in series.values():
                col.extend([0.0] * pad)
        series["count"].append(float(metric.count))
        series["p50"].append(pcts[0])
        series["p95"].append(pcts[1])
        series["p99"].append(pcts[2])

    @staticmethod
    def _column(columns: dict[str, list[float]], base: str,
                n: int) -> list[float]:
        col = columns.get(base)
        if col is None:
            col = []
            columns[base] = col
        pad = n - 1 - len(col)
        if pad:
            col.extend([0.0] * pad)
        return col

    def _decimate(self) -> None:
        """Halve the resolution: keep every second sample, double the
        interval.  Deterministic, so replays decimate identically."""
        self.t = self.t[1::2]
        for columns in (self.counters, self.gauges):
            for base, col in columns.items():
                columns[base] = col[1::2]
        for series in self.histograms.values():
            for name, col in list(series.items()):
                series[name] = col[1::2]
        self.interval *= 2
        self._next = self.t[-1] + self.interval if self.t else self.interval

    # ------------------------------------------------------------------
    def mark(self, now: float, name: str, args: dict[str, Any]) -> None:
        mark: dict[str, Any] = {"t": now, "name": name}
        if args:
            mark["args"] = args
        self.marks.append(mark)

    def doc(self) -> dict[str, Any]:
        n = len(self.t)
        for columns in (self.counters, self.gauges):
            for base in columns:
                self._column(columns, base, n + 1)
        for key in self.histograms:
            series = self.histograms[key]
            pad = n - len(series["count"])
            if pad:
                for col in series.values():
                    col.extend([0.0] * pad)
        return {
            "label": self.label,
            "interval": self.interval if self.interval is not None else 0.0,
            "t": list(self.t),
            "counters": {k: list(v) for k, v in sorted(self.counters.items())},
            "gauges": {k: list(v) for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: {name: list(col) for name, col in v.items()}
                for k, v in sorted(self.histograms.items())},
            "marks": list(self.marks),
        }


class Timeline:
    """Sim-time sampler shared by every environment under one observer.

    ``sample_interval`` — sim seconds between samples; ``None`` (default)
    auto-scales per environment from the first clock advance.  Attach with
    :func:`attach_timeline`, read out with :meth:`timeline_doc`.
    """

    def __init__(self, sample_interval: float | None = None):
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sample_interval = sample_interval
        self._registry: MetricsRegistry | None = None
        self._cursors: list[_Cursor] = []
        self._by_env: dict[int, _Cursor] = {}

    # ------------------------------------------------------------------
    def bind(self, env) -> Any:
        """Engine side: a fresh cursor's ``on_advance`` hook for ``env``.

        Called by :class:`~repro.sim.Environment` at construction (via the
        duck-typed ``trace_hooks.timeline`` attribute), once per
        measurement.
        """
        if self._registry is None:
            raise RuntimeError(
                "Timeline not attached to an observer; use attach_timeline")
        cursor = _Cursor(self._registry, self.sample_interval)
        self._cursors.append(cursor)
        self._by_env[id(env)] = cursor
        return cursor.on_advance

    def set_label(self, env, label: str) -> None:
        """Name the segment recorded for ``env`` (the measurement label)."""
        cursor = self._by_env.get(id(env))
        if cursor is not None:
            cursor.label = label

    def mark(self, env, name: str, **args: Any) -> None:
        """Drop a point annotation at ``env.now`` on ``env``'s segment."""
        cursor = self._by_env.get(id(env))
        if cursor is not None:
            cursor.mark(env.now, name, args)

    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self._cursors)

    def timeline_doc(self) -> dict[str, Any]:
        """The JSON-safe timeline document (one segment per environment)."""
        return {
            "schema": TIMELINE_SCHEMA,
            "sample_interval": self.sample_interval,
            "segments": [c.doc() for c in self._cursors],
        }


def attach_timeline(obs, sample_interval: float | None = None) -> Timeline:
    """Create a :class:`Timeline` and hook it into an observer.

    Environments built under ``obs`` afterwards (``trace_hooks =
    obs.engine_hooks``) sample themselves; instrumented code reaches the
    sampler via ``obs.timeline``.
    """
    timeline = Timeline(sample_interval)
    timeline._registry = obs.metrics
    obs.timeline = timeline
    obs.engine_hooks.timeline = timeline
    return timeline


def merge_timelines(docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-unit timeline docs by ordered segment concatenation.

    Each unit samples under its own observer and clock, so its segments
    are self-contained; merging in unit order is exact — the merged doc is
    bit-identical for any ``--jobs`` fan-out, because unit order (not
    completion order) defines it.
    """
    segments: list[dict[str, Any]] = []
    interval: float | None = None
    for doc in docs:
        if not doc:
            continue
        if interval is None:
            interval = doc.get("sample_interval")
        segments.extend(doc.get("segments", ()))
    return {"schema": TIMELINE_SCHEMA, "sample_interval": interval,
            "segments": segments}

"""A sim-time span tracer.

Spans are closed intervals of *simulated* time attached to a ``(process,
track)`` pair — in Chrome trace-event terms a (pid, tid).  Each measurement
(one :class:`~repro.sim.Environment`) registers itself as a process so its
sim clock, which restarts at zero, gets its own timeline; tracks within a
process separate logically concurrent activities (the repair chain, the
client transfer, each recovery server).

The simulation is single-threaded but logically concurrent, so spans carry
explicit timestamps instead of relying on a thread-local stack: record
either a finished interval with :meth:`Tracer.complete`, or an open one
with :meth:`Tracer.begin` / :meth:`SpanHandle.end`.  Nesting is by time
containment on a track, which is exactly how Perfetto renders same-track
"X" events.
"""

from __future__ import annotations

from typing import Any


class Span:
    """One finished span: a named interval on a (process, track) pair."""

    __slots__ = ("name", "pid", "tid", "start", "duration", "args")

    def __init__(self, name: str, pid: int, tid: int, start: float,
                 duration: float, args: dict[str, Any]):
        self.name = name
        self.pid = pid
        self.tid = tid
        self.start = start
        self.duration = duration
        self.args = args

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, pid={self.pid}, tid={self.tid}, "
                f"start={self.start:.6g}, dur={self.duration:.6g})")


class SpanHandle:
    """An open span returned by :meth:`Tracer.begin`."""

    __slots__ = ("_tracer", "name", "pid", "tid", "start", "args")

    def __init__(self, tracer: "Tracer", name: str, pid: int, tid: int,
                 start: float, args: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.pid = pid
        self.tid = tid
        self.start = start
        self.args = args

    def end(self, now: float, **extra_args) -> Span:
        """Close the span at sim time ``now`` and record it."""
        if extra_args:
            self.args.update(extra_args)
        return self._tracer.complete(self.name, self.pid, self.tid,
                                     self.start, now, **self.args)


class Tracer:
    """Collects spans and counter samples across measurements."""

    def __init__(self):
        self.spans: list[Span] = []
        #: pid -> human-readable label, in registration order.
        self.processes: list[str] = []
        #: (pid, tid, track name) in registration order.
        self.tracks: list[tuple[int, int, str]] = []
        #: counter samples: (pid, name, sim time, value).
        self.counter_samples: list[tuple[int, str, float, float]] = []
        self._track_ids: dict[tuple[int, str], int] = {}
        self._tracks_per_pid: dict[int, int] = {}

    # ------------------------------------------------------------------
    def process(self, label: str) -> int:
        """Register a new process (one per measurement); returns its pid."""
        self.processes.append(label)
        return len(self.processes) - 1

    def track(self, pid: int, name: str) -> int:
        """The tid of the named track within ``pid`` (created if new)."""
        key = (pid, name)
        tid = self._track_ids.get(key)
        if tid is None:
            tid = self._tracks_per_pid.get(pid, 0)
            self._tracks_per_pid[pid] = tid + 1
            self._track_ids[key] = tid
            self.tracks.append((pid, tid, name))
        return tid

    # ------------------------------------------------------------------
    def complete(self, name: str, pid: int, tid: int, start: float,
                 end: float, **args) -> Span:
        """Record a finished span over ``[start, end]`` sim seconds."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(name, pid, tid, start, end - start, args)
        self.spans.append(span)
        return span

    def begin(self, name: str, pid: int, tid: int, start: float,
              **args) -> SpanHandle:
        """Open a span; close it with :meth:`SpanHandle.end`."""
        return SpanHandle(self, name, pid, tid, start, args)

    def counter(self, pid: int, name: str, now: float, value: float) -> None:
        """Record a counter-track sample (rendered as a Perfetto graph)."""
        self.counter_samples.append((pid, name, now, value))

    # ------------------------------------------------------------------
    def spans_named(self, name: str, pid: int | None = None) -> list[Span]:
        """All spans of the given name (optionally within one process)."""
        return [s for s in self.spans
                if s.name == name and (pid is None or s.pid == pid)]

    def __len__(self) -> int:
        return len(self.spans)

"""Wall-clock profiler for the engine dispatch loop.

"Where did the 39 seconds go" is a *host*-time question, so unlike every
other observer (sim-time spans, sim-time timelines) this one reads the
wall clock — and therefore ships in its own snapshot key (``profile``)
that is stripped from cached results and absent from default ``--json``
output, keeping deterministic artifacts deterministic.

The engine already pre-binds its trace hooks (one attribute load per
scheduled event); the profiler rides the same path: each process
resumption timestamps ``perf_counter`` and attributes the elapsed interval
to the *previously* resumed process's code site — the generator function's
``(name, file, line)``, read off ``gi_code``.  That interval covers the
generator's ``send`` plus the engine work it caused (event scheduling,
callback dispatch), which is exactly the per-process-type cost a flame
table wants.  Time before the first resume and after the last one
(``stop()``) is attributed to the engine itself.

The readout (:meth:`Profiler.profile_doc`) is a ``repro.profile/1``
document; :func:`merge_profiles` sums site rows across units, and
:func:`profile_bench_section` shapes the merged doc into the per-section
rows a ``repro.bench`` results document carries.
"""

from __future__ import annotations

import time
from typing import Any

#: Profile document schema identifier.
PROFILE_SCHEMA = "repro.profile/1"

#: Site key for engine time outside any process generator.
ENGINE_SITE = "<engine>"


def _site_of(process) -> str:
    """``generator_name (file.py:lineno)`` for a resumed process."""
    gen = getattr(process, "_gen", None)
    code = getattr(gen, "gi_code", None)
    if code is None:
        return ENGINE_SITE
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{code.co_name} ({filename}:{code.co_firstlineno})"


class Profiler:
    """Attributes host time per resumed process code site."""

    __slots__ = ("sites", "_last_t", "_last_site", "_t0", "_stopped")

    def __init__(self):
        #: site -> [resumes, wall seconds].
        self.sites: dict[str, list[float]] = {}
        self._last_t: float | None = None
        self._last_site: str | None = None
        self._t0 = time.perf_counter()
        self._stopped = False

    # ------------------------------------------------------------------
    def on_resume(self, process) -> None:
        """Engine hook: a process generator is about to be resumed."""
        t = time.perf_counter()
        last = self._last_site
        if last is not None:
            self.sites[last][1] += t - self._last_t
        site = _site_of(process)
        acc = self.sites.get(site)
        if acc is None:
            acc = [0, 0.0]
            self.sites[site] = acc
        acc[0] += 1
        self._last_t = t
        self._last_site = site

    def stop(self) -> None:
        """Close the open interval (call once, when measuring ends)."""
        if self._stopped:
            return
        self._stopped = True
        t = time.perf_counter()
        if self._last_site is not None:
            self.sites[self._last_site][1] += t - self._last_t
            self._last_site = None

    # ------------------------------------------------------------------
    def profile_doc(self) -> dict[str, Any]:
        """The JSON-safe ``repro.profile/1`` document."""
        self.stop()
        total = time.perf_counter() - self._t0
        attributed = sum(acc[1] for acc in self.sites.values())
        rows = [{"site": site, "resumes": int(acc[0]),
                 "wall_s": round(acc[1], 6)}
                for site, acc in self.sites.items()]
        rows.sort(key=lambda r: (-r["wall_s"], r["site"]))
        return {
            "schema": PROFILE_SCHEMA,
            "total_wall_s": round(total, 6),
            "attributed_wall_s": round(attributed, 6),
            "sites": rows,
        }


def merge_profiles(docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Sum per-unit profile docs by code site."""
    sites: dict[str, list[float]] = {}
    total = 0.0
    attributed = 0.0
    for doc in docs:
        if not doc:
            continue
        total += doc.get("total_wall_s", 0.0)
        attributed += doc.get("attributed_wall_s", 0.0)
        for row in doc.get("sites", ()):
            acc = sites.setdefault(row["site"], [0, 0.0])
            acc[0] += row["resumes"]
            acc[1] += row["wall_s"]
    rows = [{"site": site, "resumes": int(acc[0]), "wall_s": round(acc[1], 6)}
            for site, acc in sites.items()]
    rows.sort(key=lambda r: (-r["wall_s"], r["site"]))
    return {"schema": PROFILE_SCHEMA, "total_wall_s": round(total, 6),
            "attributed_wall_s": round(attributed, 6), "sites": rows}


def profile_bench_section(doc: dict[str, Any],
                          n_slowest: int = 10) -> dict[str, Any]:
    """A merged profile as a ``repro.bench``-results-compatible section:
    totals plus the hottest sites, each with its share of attributed time."""
    attributed = doc.get("attributed_wall_s", 0.0) or 0.0
    hottest = [{
        "name": row["site"],
        "resumes": row["resumes"],
        "wall_s": row["wall_s"],
        "share": round(row["wall_s"] / attributed, 4) if attributed else 0.0,
    } for row in doc.get("sites", ())[:n_slowest]]
    return {
        "schema": doc.get("schema", PROFILE_SCHEMA),
        "total_wall_s": doc.get("total_wall_s", 0.0),
        "attributed_wall_s": attributed,
        "hottest": hottest,
    }


def summarize_profile(doc: dict[str, Any], n_rows: int = 15) -> str:
    """Plain-text flame table of a (merged) profile document."""
    rows = doc.get("sites", ())[:n_rows]
    if not rows:
        return "(no profile samples)"
    attributed = doc.get("attributed_wall_s", 0.0) or 0.0
    width = max(len(r["site"]) for r in rows)
    lines = ["== profile (wall clock, per process site) =="]
    for row in rows:
        share = row["wall_s"] / attributed if attributed else 0.0
        lines.append(f"{row['site'].ljust(width)}  "
                     f"{row['wall_s']:8.3f}s  {share:6.1%}  "
                     f"{row['resumes']} resumes")
    lines.append(f"{'total'.ljust(width)}  "
                 f"{doc.get('total_wall_s', 0.0):8.3f}s")
    return "\n".join(lines)


def attach_profiler(obs) -> Profiler:
    """Create a :class:`Profiler` and hook it into an observer's engine
    hooks; read out with ``obs.profiler.profile_doc()``."""
    profiler = Profiler()
    obs.profiler = profiler
    obs.engine_hooks.profiler = profiler
    return profiler

"""Flight recorder: a bounded ring of recent engine activity, dumped as a
postmortem bundle when something goes wrong.

A failing simulation usually dies *after* the interesting part: the
invariant fires, the repair ladder abandons, or the compute function
raises — and the end-of-run snapshot (if it even gets written) shows only
totals.  The :class:`FlightRecorder` keeps the last-N scheduled engine
events in a ring buffer (via ``EngineHooks.on_schedule``, same pre-bound
path as the counters), accumulates *incidents* (explicit "this went
wrong" records from the repair ladder, the invariant checker's raise, or
the runner's exception handler) and the latest fault-injection state, and
on demand serializes a JSON bundle: the event tail, the tail of recorded
spans, a full metric snapshot, the fault state, and the unit's
seed/provenance — enough to replay and to see what the engine was doing
in its final simulated moments.

The recorder is duck-typed from below (``getattr(obs, "flightrec",
None)``), so the ``faults`` and ``cluster`` layers feed it without import
edges; the runner (:mod:`repro.runner.executor`) arms it per unit with
:func:`attach_flightrec` and dumps on exception or when incidents
accumulated.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import deque
from typing import Any

#: Flight-recorder bundle schema identifier.
FLIGHTREC_SCHEMA = "repro.flightrec/1"

#: Default ring capacity (events kept).
DEFAULT_CAPACITY = 512

#: Spans from the tail of the tracer included in a bundle.
SPAN_TAIL = 64

_SEGMENT_RE = re.compile(r"[^A-Za-z0-9._-]+")


class FlightRecorder:
    """Bounded event ring + incident log + fault state, bundled on demand."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: (sim time, event type name) ring of recently scheduled events.
        self.events: deque[tuple[float, str]] = deque(maxlen=capacity)
        self.n_seen = 0
        self.incidents: list[dict[str, Any]] = []
        self.fault_state: dict[str, Any] | None = None
        #: Unit identity (scenario name/hash, seeds, version) — set by the
        #: runner so a bundle is replayable on its own.
        self.provenance: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def on_schedule(self, when: float, event) -> None:
        """Engine hook: record one scheduled event in the ring."""
        self.n_seen += 1
        self.events.append((when, type(event).__name__))

    def incident(self, kind: str, **args: Any) -> None:
        """Record one "something went wrong" occurrence."""
        self.incidents.append({"kind": kind, **args})

    def note_fault_state(self, state: dict[str, Any]) -> None:
        """Record the injector's latest state (replaces the previous)."""
        self.fault_state = state

    # ------------------------------------------------------------------
    def bundle(self, obs=None) -> dict[str, Any]:
        """The JSON-safe postmortem document."""
        doc: dict[str, Any] = {
            "schema": FLIGHTREC_SCHEMA,
            "provenance": dict(self.provenance),
            "incidents": list(self.incidents),
            "events_seen": self.n_seen,
            "events_kept": len(self.events),
            "event_tail": [{"t": when, "event": name}
                           for when, name in self.events],
            "fault_state": self.fault_state,
        }
        if obs is not None:
            from repro.obs.snapshot import snapshot

            doc["metrics"] = snapshot(obs)
            spans = obs.tracer.spans[-SPAN_TAIL:]
            doc["span_tail"] = [
                {"name": s.name, "pid": s.pid, "tid": s.tid,
                 "start": s.start, "duration": s.duration,
                 "args": dict(s.args)}
                for s in spans]
        return doc

    def dump(self, path: str, obs=None) -> str:
        """Atomically write the bundle to ``path``; returns the path."""
        parent = os.path.dirname(path) or "."
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.bundle(obs), fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def dump_to(self, out_dir: str, unit: str, obs=None) -> str:
        """Write the bundle under ``out_dir`` named after the unit."""
        leaf = _SEGMENT_RE.sub("-", unit).strip("-") or "unit"
        return self.dump(os.path.join(out_dir, f"{leaf}.flightrec.json"),
                         obs=obs)


def attach_flightrec(obs, capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Create a :class:`FlightRecorder` and hook it into an observer.

    Every event the engine schedules under ``obs`` afterwards lands in the
    ring; instrumented code reaches the recorder via ``obs.flightrec``
    (duck-typed, so lower layers need no obs import).
    """
    recorder = FlightRecorder(capacity)
    obs.flightrec = recorder
    obs.engine_hooks.flightrec = recorder
    return recorder

"""Counters, time-weighted gauges and streaming histograms.

A :class:`MetricsRegistry` is a flat namespace of named, optionally
labelled metrics.  The three metric kinds cover the quantities the
simulation cares about:

* :class:`Counter` — monotone event counts (events scheduled, bytes moved),
* :class:`Gauge` — a sampled level whose *time-weighted* mean is the
  meaningful summary (queue depth, units in use): each ``set(value, now)``
  closes the previous level's interval, so the mean is the integral of the
  level over time divided by the observation window,
* :class:`Histogram` — a streaming distribution with p50/p95/p99 read-outs
  (queue wait times).  Values are kept in a bounded reservoir (deterministic
  reservoir sampling, so replays reproduce identical percentiles).

Everything here is sim-time-agnostic: callers pass ``now`` explicitly, so
the same registry can aggregate over several :class:`~repro.sim.Environment`
instances (one per measurement).
"""

from __future__ import annotations

import math

_MASK64 = (1 << 64) - 1


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount


class Gauge:
    """A level with min/max/last and a time-weighted mean."""

    __slots__ = ("name", "value", "min", "max",
                 "_integral", "_t_first", "_t_last")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._integral = 0.0
        self._t_first: float | None = None
        self._t_last = 0.0

    def set(self, value: float, now: float) -> None:
        """Record the level ``value`` holding from ``now`` onwards."""
        if self._t_first is None:
            self._t_first = now
        else:
            self._integral += self.value * (now - self._t_last)
        self._t_last = now
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add(self, delta: float, now: float) -> None:
        """Shift the level by ``delta`` at time ``now``."""
        self.set(self.value + delta, now)

    def mean(self, now: float | None = None) -> float:
        """Time-weighted mean level over the observation window.

        The window runs from the first sample to the last one (or to
        ``now``, when given and later).  A gauge sampled exactly once
        reports that sample; a never-sampled gauge reports ``0.0`` —
        never NaN, so downstream math and JSON stay well-defined.
        """
        if self._t_first is None:
            return 0.0
        end = self._t_last if now is None else max(now, self._t_last)
        elapsed = end - self._t_first
        if elapsed <= 0:
            return self.value
        integral = self._integral + self.value * (end - self._t_last)
        return integral / elapsed


class Histogram:
    """A streaming distribution with percentile read-outs.

    Keeps exact ``count`` / ``total`` / ``min`` / ``max`` and a bounded
    reservoir for quantiles.  Reservoir replacement uses a fixed-seed LCG so
    two identical runs report identical percentiles.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_reservoir", "_capacity", "_state")

    def __init__(self, name: str, reservoir_size: int = 4096):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._capacity = reservoir_size
        self._state = 0x9E3779B97F4A7C15

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
            return
        # Algorithm R with a deterministic 64-bit LCG.
        self._state = (self._state * 6364136223846793005
                       + 1442695040888963407) & _MASK64
        slot = self._state % self.count
        if slot < self._capacity:
            self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observation (exact)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) estimated from the reservoir.

        An empty histogram reports ``0.0`` for every quantile — never an
        IndexError or NaN — so timelines and summaries of metrics that saw
        no observations render as flat zero series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def percentiles(self) -> tuple[float, float, float]:
        """(p50, p95, p99); ``(0.0, 0.0, 0.0)`` for an empty histogram."""
        return self.quantile(0.50), self.quantile(0.95), self.quantile(0.99)


def format_metric_name(name: str, labels: dict) -> str:
    """Canonical ``name{k=v,...}`` key for a labelled metric."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A namespace of metrics, created on first use and kept forever."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict):
        key = format_metric_name(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(f"metric {key!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter of the given name/labels (created if new)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The time-weighted gauge of the given name/labels."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The streaming histogram of the given name/labels."""
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.items()))

    def get(self, name: str, **labels):
        """Look up an existing metric (``None`` when absent)."""
        return self._metrics.get(format_metric_name(name, labels))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Plain-text report: counters, gauge means, wait percentiles.

        Deterministically sorted by metric key (registry iteration order),
        so two runs that recorded the same metrics — in any registration
        order — render byte-identical summaries.
        """
        counters = [(k, m) for k, m in self if isinstance(m, Counter)]
        gauges = [(k, m) for k, m in self if isinstance(m, Gauge)]
        hists = [(k, m) for k, m in self if isinstance(m, Histogram)]
        lines: list[str] = []
        if counters:
            lines.append("== counters ==")
            width = max(len(k) for k, _ in counters)
            for key, c in counters:
                lines.append(f"{key.ljust(width)}  {c.value:g}")
        if gauges:
            if lines:
                lines.append("")
            lines.append("== gauges (time-weighted) ==")
            width = max(len(k) for k, _ in gauges)
            for key, g in gauges:
                lines.append(f"{key.ljust(width)}  last={g.value:.4g} "
                             f"mean={g.mean():.4g} min={g.min:.4g} "
                             f"max={g.max:.4g}")
        if hists:
            if lines:
                lines.append("")
            lines.append("== histograms ==")
            width = max(len(k) for k, _ in hists)
            for key, h in hists:
                p50, p95, p99 = h.percentiles()
                lines.append(
                    f"{key.ljust(width)}  count={h.count} mean={h.mean:.4g} "
                    f"p50={p50:.4g} p95={p95:.4g} p99={p99:.4g} "
                    f"max={(h.max if h.count else 0.0):.4g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

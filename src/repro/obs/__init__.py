"""Simulation-native observability: metrics, sim-time spans, trace export.

The package has three layers:

* :mod:`repro.obs.metrics` — counters, time-weighted gauges and streaming
  histograms behind a :class:`MetricsRegistry`,
* :mod:`repro.obs.tracer` — a sim-time span :class:`Tracer` (explicit
  timestamps, since DES processes interleave on one OS thread),
* :mod:`repro.obs.export` — Chrome / Perfetto trace-event JSON output.

An :class:`Observer` bundles one registry and one tracer; instrumented code
(`repro.sim`, `repro.cluster`) accepts an observer and is a no-op without
one.  ``python -m repro.experiments <exp> --trace out.json --metrics``
installs a default observer, reruns any experiment with full visibility,
and exports the result.

Second-generation telemetry rides on the same observer, armed per unit:

* :mod:`repro.obs.timeline` — deterministic sim-time sampling of the
  registry into mergeable time series (``--timeline``),
* :mod:`repro.obs.profile` — wall-clock profiler over the engine dispatch
  loop (``--profile``; nondeterministic by nature, never cached),
* :mod:`repro.obs.flightrec` — bounded ring of recent engine events dumped
  as a postmortem bundle on invariant/repair/compute failures
  (``--flightrec DIR``),
* :mod:`repro.obs.report` — self-contained HTML run reports and cross-run
  diffs (``--report``, ``python -m repro.obs.report``).
"""

from repro.obs.export import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.flightrec import FLIGHTREC_SCHEMA, FlightRecorder, attach_flightrec
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_name,
)
from repro.obs.observer import (
    EngineHooks,
    Observer,
    get_default_observer,
    observed,
    set_default_observer,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    Profiler,
    attach_profiler,
    merge_profiles,
    profile_bench_section,
    summarize_profile,
)
from repro.obs.report import diff_docs, render_diff, render_report, write_report
from repro.obs.snapshot import (
    merge_snapshots,
    merge_trace_events,
    snapshot,
    summarize,
)
from repro.obs.timeline import (
    TIMELINE_SCHEMA,
    Timeline,
    attach_timeline,
    merge_timelines,
)
from repro.obs.tracer import Span, SpanHandle, Tracer

__all__ = [
    "FLIGHTREC_SCHEMA",
    "PROFILE_SCHEMA",
    "TIMELINE_SCHEMA",
    "FlightRecorder",
    "Profiler",
    "Timeline",
    "attach_flightrec",
    "attach_profiler",
    "attach_timeline",
    "diff_docs",
    "merge_profiles",
    "merge_timelines",
    "profile_bench_section",
    "render_diff",
    "render_report",
    "summarize_profile",
    "write_report",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metric_name",
    "EngineHooks",
    "Observer",
    "get_default_observer",
    "merge_snapshots",
    "merge_trace_events",
    "observed",
    "set_default_observer",
    "snapshot",
    "summarize",
    "Span",
    "SpanHandle",
    "Tracer",
]

"""Simulation-native observability: metrics, sim-time spans, trace export.

The package has three layers:

* :mod:`repro.obs.metrics` — counters, time-weighted gauges and streaming
  histograms behind a :class:`MetricsRegistry`,
* :mod:`repro.obs.tracer` — a sim-time span :class:`Tracer` (explicit
  timestamps, since DES processes interleave on one OS thread),
* :mod:`repro.obs.export` — Chrome / Perfetto trace-event JSON output.

An :class:`Observer` bundles one registry and one tracer; instrumented code
(`repro.sim`, `repro.cluster`) accepts an observer and is a no-op without
one.  ``python -m repro.experiments <exp> --trace out.json --metrics``
installs a default observer, reruns any experiment with full visibility,
and exports the result.
"""

from repro.obs.export import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_name,
)
from repro.obs.observer import (
    EngineHooks,
    Observer,
    get_default_observer,
    observed,
    set_default_observer,
)
from repro.obs.snapshot import (
    merge_snapshots,
    merge_trace_events,
    snapshot,
    summarize,
)
from repro.obs.tracer import Span, SpanHandle, Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metric_name",
    "EngineHooks",
    "Observer",
    "get_default_observer",
    "merge_snapshots",
    "merge_trace_events",
    "observed",
    "set_default_observer",
    "snapshot",
    "summarize",
    "Span",
    "SpanHandle",
    "Tracer",
]

"""Synthetic object-storage traces (substitute for the Alibaba trace).

The paper samples its two workloads from a production Alibaba Cloud Object
Storage trace (Figure 7, Table 2) that we cannot redistribute here.  This
package generates synthetic traces whose *published* properties match:

* the byte-CDF shapes of Figure 7 (capacity dominated by multi-MB objects,
  >97.7% of capacity above 4 MB; read traffic skewed further right),
* Table 2's workload statistics (W1: 4 MB–4 GB, mean 102.8 MB;
  W2: 4 KB–4 MB, mean 101.3 KB; request means 148.5 MB / 72.0 KB).

All sampling is deterministic given a ``numpy.random.Generator``.
"""

from repro.trace.distribution import TruncatedLognormal, solve_median_for_mean
from repro.trace.generator import AliTraceModel, TraceObject
from repro.trace.workloads import W1, W2, MixtureWorkload, RequestSampler, Workload
from repro.trace.cdf import byte_cdf, count_cdf

__all__ = [
    "TruncatedLognormal",
    "solve_median_for_mean",
    "AliTraceModel",
    "TraceObject",
    "W1",
    "W2",
    "MixtureWorkload",
    "RequestSampler",
    "Workload",
    "byte_cdf",
    "count_cdf",
]

"""Byte-weighted and count-weighted CDFs over object sizes (Figure 7)."""

from __future__ import annotations

import numpy as np


def _grid(lo: float, hi: float, points: int) -> np.ndarray:
    return np.geomspace(lo, hi, points)


def byte_cdf(sizes: np.ndarray, grid: np.ndarray | None = None,
             weights: np.ndarray | None = None,
             points: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Fraction of total *bytes* in objects of size <= x, per grid point.

    ``weights`` multiplies each object's byte contribution (request counts
    for Figure 7b's read-traffic CDF); defaults to 1 (capacity CDF, 7a).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.size == 0:
        raise ValueError("empty size population")
    if weights is None:
        weights = np.ones_like(sizes)
    weights = np.asarray(weights, dtype=np.float64)
    if grid is None:
        grid = _grid(sizes.min(), sizes.max(), points)
    byte_mass = sizes * weights
    total = byte_mass.sum()
    order = np.argsort(sizes)
    sorted_sizes = sizes[order]
    cumulative = np.cumsum(byte_mass[order])
    idx = np.searchsorted(sorted_sizes, grid, side="right")
    cdf = np.where(idx > 0, cumulative[np.clip(idx - 1, 0, None)], 0.0) / total
    return grid, cdf


def count_cdf(sizes: np.ndarray, grid: np.ndarray | None = None,
              points: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Fraction of *objects* of size <= x, per grid point."""
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.size == 0:
        raise ValueError("empty size population")
    if grid is None:
        grid = _grid(sizes.min(), sizes.max(), points)
    sorted_sizes = np.sort(sizes)
    idx = np.searchsorted(sorted_sizes, grid, side="right")
    return grid, idx / sizes.size

"""Truncated lognormal building block for object-size distributions.

Object sizes in BLOB stores span six orders of magnitude and are classically
modelled as (mixtures of) lognormals; truncation pins each workload to its
published size range, and a closed-form mean lets us solve the lognormal
median so the sampled mean matches Table 2 exactly.
"""

from __future__ import annotations

import math

import numpy as np


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class TruncatedLognormal:
    """Lognormal conditioned on ``lo <= X <= hi``."""

    def __init__(self, median: float, sigma: float, lo: float, hi: float):
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.mu = math.log(median)
        self.sigma = sigma
        self.lo = lo
        self.hi = hi
        self._a = (math.log(lo) - self.mu) / sigma
        self._b = (math.log(hi) - self.mu) / sigma
        self._mass = _phi(self._b) - _phi(self._a)
        if self._mass <= 0:
            raise ValueError("truncation interval carries no probability mass")

    def mean(self) -> float:
        """E[X | lo <= X <= hi].

        Uses the closed form when it is numerically trustworthy and falls
        back to a max-shifted log-space quadrature deep in the tails, where
        the two normal-CDF differences underflow.
        """
        if self._mass > 1e-10:
            shift = self.sigma
            numer = _phi(self._b - shift) - _phi(self._a - shift)
            value = math.exp(self.mu + self.sigma ** 2 / 2) * numer / self._mass
            if math.isfinite(value) and self.lo <= value <= self.hi:
                return value
        return self._numeric_mean()

    def _numeric_mean(self) -> float:
        """Quadrature of E[X] on the log grid; stable for any (mu, sigma)
        because the density is renormalised by its maximum exponent."""
        u = np.linspace(math.log(self.lo), math.log(self.hi), 16_384)
        log_w = -((u - self.mu) ** 2) / (2 * self.sigma ** 2)  # density over du
        log_w -= log_w.max()
        w = np.exp(log_w)
        return float(np.sum(w * np.exp(u)) / np.sum(w))

    def cdf(self, x: float) -> float:
        """Cumulative probability of sizes <= x."""
        if x <= self.lo:
            return 0.0
        if x >= self.hi:
            return 1.0
        z = (math.log(x) - self.mu) / self.sigma
        return (_phi(z) - _phi(self._a)) / self._mass

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Inverse-free rejection-less sampling via truncated normal CDF."""
        u = rng.uniform(_phi(self._a), _phi(self._b), size=n)
        # Invert the standard normal CDF (vectorised Beasley-Springer/Moro
        # is overkill; scipy-free: use the erfinv available in numpy >= 1.24
        # via np.special? Not available — use a stable rational approx.)
        z = _norm_ppf(u)
        return np.exp(self.mu + self.sigma * z)


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Acklam's rational approximation of the normal quantile (|err|<1e-9)."""
    p = np.asarray(p, dtype=np.float64)
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low, p_high = 0.02425, 1 - 0.02425
    out = np.empty_like(p)

    low = p < p_low
    if np.any(low):
        q = np.sqrt(-2 * np.log(p[low]))
        out[low] = ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
                    / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    mid = (p >= p_low) & (p <= p_high)
    if np.any(mid):
        q = p[mid] - 0.5
        r = q * q
        out[mid] = ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
                    / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1))
    high = p > p_high
    if np.any(high):
        q = np.sqrt(-2 * np.log1p(-p[high]))
        out[high] = -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
                      / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    return out


def solve_median_for_mean(sigma: float, lo: float, hi: float,
                          target_mean: float) -> float:
    """Median m such that TruncatedLognormal(m, sigma, lo, hi).mean() hits
    ``target_mean`` (bisection; the truncated mean is monotone in m)."""
    if not lo < target_mean < hi:
        raise ValueError("target mean must lie inside the truncation interval")
    # Extreme sigmas push the required median far outside [lo, hi]; use a
    # very wide bracket (the truncated mean is still monotone in the median).
    lo_m, hi_m = lo * 1e-12, hi * 1e12
    for _ in range(300):
        mid = math.sqrt(lo_m * hi_m)
        try:
            mean = TruncatedLognormal(mid, sigma, lo, hi).mean()
        except ValueError:
            # Truncation mass underflowed: the distribution sits entirely
            # below lo (mean -> lo) or above hi (mean -> hi).
            mean = lo if mid < math.sqrt(lo * hi) else hi
        if mean < target_mean:
            lo_m = mid
        else:
            hi_m = mid
    return math.sqrt(lo_m * hi_m)

"""The full-trace model behind Figure 7.

A two-component lognormal mixture: a numerous small-object population
(photos, documents) and a capacity-dominating large-object population
(videos, archives, docker images).  Component weights and shapes were chosen
so the published facts hold:

* > 97.7 % of capacity in objects larger than 4 MB (§4.1),
* byte-CDF of capacity spanning 4 KB .. 4 GB with its mass in the tens of
  MB to GB decades (Figure 7a),
* read traffic shifted right of capacity (Figure 7b) via size-biased
  request sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.distribution import TruncatedLognormal

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class TraceObject:
    """One object of a generated trace."""

    object_id: int
    size: int


class AliTraceModel:
    """Synthetic stand-in for the rcstor/ali-trace object population."""

    #: (weight, median, sigma) of the mixture components.
    SMALL = (0.85, 64 * KB, 1.5)
    LARGE = (0.15, 96 * MB, 1.7)
    LO = 4 * KB
    HI = 4 * GB

    def __init__(self):
        w_small, med_s, sig_s = self.SMALL
        w_large, med_l, sig_l = self.LARGE
        self.weights = (w_small, w_large)
        self.components = (
            TruncatedLognormal(med_s, sig_s, self.LO, self.HI),
            TruncatedLognormal(med_l, sig_l, self.LO, self.HI),
        )

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Object sizes in bytes (integers)."""
        picks = rng.random(n) < self.weights[0]
        sizes = np.empty(n, dtype=np.float64)
        n_small = int(picks.sum())
        if n_small:
            sizes[picks] = self.components[0].sample(rng, n_small)
        if n - n_small:
            sizes[~picks] = self.components[1].sample(rng, n - n_small)
        return np.clip(sizes, self.LO, self.HI).astype(np.int64)

    def sample_objects(self, rng: np.random.Generator, n: int) -> list[TraceObject]:
        """Draw TraceObject records with sequential ids."""
        sizes = self.sample_sizes(rng, n)
        return [TraceObject(i, int(s)) for i, s in enumerate(sizes)]

    def capacity_share_above(self, sizes: np.ndarray, threshold: int) -> float:
        """Fraction of total bytes stored in objects larger than threshold."""
        sizes = np.asarray(sizes, dtype=np.float64)
        total = sizes.sum()
        if total == 0:
            return 0.0
        return float(sizes[sizes > threshold].sum() / total)

"""The evaluation workloads W1 and W2 (Table 2).

Both are size-truncated views of the trace model, with their lognormal
medians solved so the mean object size matches Table 2:

=====  ============  ==============  ================
name   size range    mean object     mean request
=====  ============  ==============  ================
W1     4 MB .. 4 GB  102.8 MB        148.5 MB
W2     4 KB .. 4 MB  101.3 KB        72.0 KB
=====  ============  ==============  ================

Requests follow a size-biased distribution over the stored objects (read
traffic skews toward larger objects, Figure 7b); the bias exponent ``theta``
is solved per-workload so the mean request size matches Table 2.  W2's
requests skew *left* (theta < 0): its small objects (photos, thumbnails)
are read more often than its archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.distribution import TruncatedLognormal, solve_median_for_mean

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class Workload:
    """A named object-size population plus its request-size statistics."""

    name: str
    lo: int
    hi: int
    mean_object_size: float
    mean_request_size: float
    sigma: float
    n_objects_paper: int
    _dist: TruncatedLognormal = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        median = solve_median_for_mean(self.sigma, self.lo, self.hi,
                                       self.mean_object_size)
        object.__setattr__(self, "_dist",
                           TruncatedLognormal(median, self.sigma, self.lo, self.hi))

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw object sizes (bytes) deterministically from rng."""
        return np.clip(self._dist.sample(rng, n), self.lo, self.hi).astype(np.int64)

    def cdf(self, x: float) -> float:
        """Cumulative probability of sizes <= x."""
        return self._dist.cdf(x)


@dataclass(frozen=True)
class MixtureWorkload:
    """A two-population workload (same interface as :class:`Workload`).

    The component weight is solved so the mixture mean matches the
    published mean exactly.
    """

    name: str
    lo: int
    hi: int
    mean_object_size: float
    mean_request_size: float
    n_objects_paper: int
    small_median: float
    small_sigma: float
    large_median: float
    large_sigma: float
    _small: TruncatedLognormal = field(init=False, repr=False, compare=False)
    _large: TruncatedLognormal = field(init=False, repr=False, compare=False)
    _weight: float = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        small = TruncatedLognormal(self.small_median, self.small_sigma,
                                   self.lo, self.hi)
        large = TruncatedLognormal(self.large_median, self.large_sigma,
                                   self.lo, self.hi)
        mean_s, mean_l = small.mean(), large.mean()
        if not mean_s < self.mean_object_size < mean_l:
            raise ValueError("target mean outside the component means")
        weight = (mean_l - self.mean_object_size) / (mean_l - mean_s)
        object.__setattr__(self, "_small", small)
        object.__setattr__(self, "_large", large)
        object.__setattr__(self, "_weight", weight)

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw object sizes (bytes) deterministically from rng."""
        picks = rng.random(n) < self._weight
        sizes = np.empty(n, dtype=np.float64)
        n_small = int(picks.sum())
        if n_small:
            sizes[picks] = self._small.sample(rng, n_small)
        if n - n_small:
            sizes[~picks] = self._large.sample(rng, n - n_small)
        return np.clip(sizes, self.lo, self.hi).astype(np.int64)

    def cdf(self, x: float) -> float:
        """Cumulative probability of sizes <= x."""
        return (self._weight * self._small.cdf(x)
                + (1 - self._weight) * self._large.cdf(x))


#: W1 — large objects (archives, docker images, videos) on HDDs.  The shape
#: parameter is tuned against the paper's §6.3 breakdown (average chunk
#: sizes of 14.8/25.0/56.4 MB at s0 = 1/4/16 MB).
W1 = Workload("W1", lo=4 * MB, hi=4 * GB, mean_object_size=102.8 * MB,
              mean_request_size=148.5 * MB, sigma=1.8, n_objects_paper=170_000)

#: W2 — small objects (photos, documents) on SSDs.  A two-population
#: mixture (photos/thumbnails around 16 KB; documents/media around 800 KB)
#: tuned toward the §6.3 small-size-bucket shares (26.7%/35.4% at
#: s0 = 128/256 KB) while keeping Table 2's 101.3 KB mean exact.
W2 = MixtureWorkload("W2", lo=4 * KB, hi=4 * MB,
                     mean_object_size=101.3 * KB, mean_request_size=72.0 * KB,
                     n_objects_paper=500_000,
                     small_median=16 * KB, small_sigma=1.0,
                     large_median=800 * KB, large_sigma=0.9)


class RequestSampler:
    """Size-biased sampling of stored objects (weight ∝ size**theta).

    ``theta`` is solved by bisection so the expected request size equals the
    workload's published mean request size.
    """

    def __init__(self, sizes: np.ndarray, mean_request_size: float | None = None,
                 theta: float | None = None):
        self.sizes = np.asarray(sizes, dtype=np.float64)
        if self.sizes.size == 0:
            raise ValueError("no objects to sample from")
        if theta is not None:
            self.theta = theta
        elif mean_request_size is not None:
            self.theta = self._solve_theta(mean_request_size)
        else:
            self.theta = 0.0
        self._weights = self._weights_for(self.theta)

    def _weights_for(self, theta: float) -> np.ndarray:
        log_sizes = np.log(self.sizes)
        w = np.exp(theta * (log_sizes - log_sizes.max()))
        return w / w.sum()

    def _mean_for(self, theta: float) -> float:
        w = self._weights_for(theta)
        return float((w * self.sizes).sum())

    def _solve_theta(self, target: float) -> float:
        lo, hi = -4.0, 4.0
        if not self._mean_for(lo) <= target <= self._mean_for(hi):
            raise ValueError(
                f"target request mean {target:.3g} unreachable "
                f"({self._mean_for(lo):.3g}..{self._mean_for(hi):.3g})")
        for _ in range(100):
            mid = (lo + hi) / 2
            if self._mean_for(mid) < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    @property
    def mean_request_size(self) -> float:
        """Expected request size under the current weights."""
        return float((self._weights * self.sizes).sum())

    def sample_indices(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw object indices by request weight."""
        return rng.choice(self.sizes.size, size=n, p=self._weights)

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw object sizes (bytes) deterministically from rng."""
        return self.sizes[self.sample_indices(rng, n)].astype(np.int64)

"""Open-loop serving with tenant lanes, hedged reads, and recovery.

This is the bridge between :mod:`repro.traffic` (which *generates*
arrival schedules) and :class:`~repro.cluster.rcstor.RCStor` (which
*serves* individual reads): one simulated run where requests arrive on
the schedule's clock regardless of service progress, every request runs
in the disk-queue lane of its tenant, degraded reads may hedge, and a
disk recovery can grind away underneath the whole thing.

The dependency points one way — traffic imports cluster, never the
reverse — so tenants arrive here as plain ``(label, lane, hedge)``
tuples rather than :class:`~repro.traffic.TenantSpec` objects.

Everything the run records is deterministic: arrivals are pre-sampled,
the DES event order is a pure function of the schedule and seed, and the
per-tenant metrics use the labelled-histogram discipline of
:mod:`repro.obs` (handles hoisted out of the serving loop, OBS601).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.cluster.rcstor import (
    DegradedReadResult,
    RCStor,
    RecoveryReport,
    _Runtime,
)

#: Tenant lanes map directly onto the per-disk priority queues.
LANES = (FOREGROUND, BACKGROUND)


@dataclass
class OpenLoopReport:
    """Everything one open-loop serving run measured.

    Latencies are seconds, keyed by tenant label; ``degraded`` holds the
    subset of each tenant's requests that hit the failed disk (also
    present in ``latencies``).  ``recovery`` is ``None`` when the run had
    no failed disk.
    """

    latencies: dict[str, list[float]] = field(default_factory=dict)
    degraded: dict[str, list[float]] = field(default_factory=dict)
    hedges_fired: int = 0
    hedge_wins: int = 0
    n_requests: int = 0
    n_degraded: int = 0
    drain_time: float = 0.0         # sim seconds until the last read landed
    recovery: RecoveryReport | None = None


def serve_open_loop(system: RCStor, objects, times, tenant_ids, object_ids,
                    tenants, failed_disk: int | None = None,
                    weight_limit: int | None = None,
                    hedge_s: float | None = None,
                    recovery_priority: int = BACKGROUND,
                    seed: int = 0) -> OpenLoopReport:
    """Serve one pre-sampled arrival stream, open loop.

    ``times`` / ``tenant_ids`` / ``object_ids`` are the parallel arrays
    of a :class:`~repro.traffic.TrafficSchedule`; ``tenants`` is the
    matching tuple of ``(label, lane, hedge)`` triples.  Requests spawn
    at their scheduled instant whether or not earlier ones finished —
    queueing delay is real here, unlike the closed-loop measurement
    entry points.  With a ``failed_disk``, reads of objects that lost a
    chunk run the degraded path (hedged after ``hedge_s`` seconds for
    tenants that allow it) while §5.1 recovery proceeds under
    ``weight_limit``; the run ends when both the stream has drained and
    recovery has finished, and the report's recovery makespan covers
    recovery alone.
    """
    if not (len(times) == len(tenant_ids) == len(object_ids)):
        raise ValueError("times/tenant_ids/object_ids must be parallel")
    for _, lane, _ in tenants:
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane}")
    rt = _Runtime(system.config, seed, system.obs,
                  label=f"{system.name}/open-loop")
    env = rt.env
    report = OpenLoopReport(
        latencies={label: [] for label, _, _ in tenants},
        degraded={label: [] for label, _, _ in tenants})

    degraded_ids: set[int] = set()
    recovery_done = meta = None
    recovery_end = [0.0]
    if failed_disk is not None:
        degraded_ids = {obj.object_id for obj
                        in system.degraded_read_candidates(failed_disk)}
        recovery_done, meta = system._start_recovery(
            rt, failed_disk, priority=recovery_priority,
            weight_limit=weight_limit)

        def watch_recovery():
            yield recovery_done
            recovery_end[0] = env.now

        env.process(watch_recovery())

    # Per-tenant metric handles, hoisted out of the serving loop (OBS601).
    h_latency = h_degraded = c_requests = None
    if rt.obs is not None:
        metrics = rt.obs.metrics
        h_latency = {label: metrics.histogram("traffic.latency", tenant=label)
                     for label, _, _ in tenants}
        h_degraded = {label: metrics.histogram("traffic.degraded_latency",
                                               tenant=label)
                      for label, _, _ in tenants}
        c_requests = {label: metrics.counter("traffic.requests", tenant=label)
                      for label, _, _ in tenants}

    def serve_one(i: int):
        obj = objects[int(object_ids[i])]
        label, lane, hedge_ok = tenants[int(tenant_ids[i])]
        client = rt.client(system.config.client_gbps)
        t0 = env.now
        is_degraded = failed_disk is not None \
            and obj.object_id in degraded_ids
        if is_degraded:
            result = DegradedReadResult(0.0, 0.0, 0.0, obj.size)
            hedge = hedge_s if hedge_ok else None
            if system.layout.spans_disks:
                failed_role = system.cluster.pgs[obj.pg_id].role_of(
                    failed_disk)
                yield env.process(system._degraded_striped_proc(
                    rt, obj, failed_role, client, result,
                    priority=lane, hedge_s=hedge))
            else:
                yield env.process(system._degraded_single_disk_proc(
                    rt, obj, client, result, priority=lane, hedge_s=hedge))
            report.hedges_fired += result.hedges_fired
            report.hedge_wins += result.hedge_wins
        else:
            yield env.process(system._normal_read_proc(rt, obj, client,
                                                       priority=lane))
        elapsed = env.now - t0
        report.latencies[label].append(elapsed)
        if is_degraded:
            report.degraded[label].append(elapsed)
            report.n_degraded += 1
        if h_latency is not None:
            c_requests[label].inc()
            h_latency[label].observe(elapsed)
            if is_degraded:
                h_degraded[label].observe(elapsed)
        if rt.obs is not None:
            rt.span("serve", f"lane-{lane}", t0, env.now, tenant=label,
                    size=obj.size, degraded=is_degraded)

    def dispatcher():
        # Open loop: spawn each request at its scheduled instant and keep
        # going — then wait for every in-flight read to land so the grant
        # audit sees a quiescent cluster.
        in_flight = []
        for i in range(len(times)):
            delay = float(times[i]) - env.now
            if delay > 0:
                yield env.timeout(delay)
            in_flight.append(env.process(serve_one(i)))
        report.n_requests = len(in_flight)
        if in_flight:
            yield env.all_of(in_flight)

    drained = env.process(dispatcher())
    if recovery_done is not None:
        env.run(env.all_of([recovery_done, drained]))
    else:
        env.run(drained)
    report.drain_time = env.now
    if recovery_done is not None:
        report.recovery = system._finish_recovery(rt, meta, recovery_end[0])
    else:
        rt.finalize()
    return report

"""Metadata management (§5.1): per-PG index files.

Each placement group keeps an index replicated on ``r + 1`` of its disks.
A record tracks object ID, size, disk, checksum, and the positions of the
object's partitioned chunks; because chunks in a bucket are aligned, a
chunk position is a 2-byte slot number (the small-size-bucket front needs
a 4-byte byte-offset instead).  The paper reports "about 40 bytes" per
object — this module implements the actual wire format and the test-suite
verifies the size claim on realistic workloads.

Layout of a serialized record (little-endian)::

    object_id   u64
    size        u64
    disk_id     u16
    checksum    u32
    front_len   u32   (0 if no front cut)
    front_off   u32   (present only when front_len > 0)
    n_chunks    u8
    per chunk:  level u8, slot u16
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

_HEADER = struct.Struct("<QQHIIB")
_FRONT = struct.Struct("<I")
_CHUNK = struct.Struct("<BH")

#: Index files are replicated on r + 1 disks of the PG (§5.1).
INDEX_REPLICAS = 5  # r + 1 for r = 4


@dataclass(frozen=True)
class ChunkPosition:
    """Slot of one chunk inside its level bucket."""

    level: int
    slot: int

    def __post_init__(self):
        if not 0 < self.level < 256:
            raise ValueError(f"level {self.level} out of u8 range")
        if not 0 <= self.slot < 65536:
            raise ValueError(f"slot {self.slot} out of u16 range (bucket full)")


@dataclass(frozen=True)
class IndexRecord:
    """One object's entry in a PG index file."""

    object_id: int
    size: int
    disk_id: int
    checksum: int
    chunk_positions: tuple[ChunkPosition, ...] = ()
    front_length: int = 0
    front_offset: int = 0

    def __post_init__(self):
        if self.object_id < 0 or self.size < 0:
            raise ValueError("object_id and size must be non-negative")
        if not 0 <= self.disk_id < 65536:
            raise ValueError("disk_id out of u16 range")
        if len(self.chunk_positions) > 255:
            raise ValueError("too many chunks for a u8 count")
        if self.front_length == 0 and self.front_offset:
            raise ValueError("front offset without front length")

    def serialize(self) -> bytes:
        """Encode to the binary wire format."""
        out = bytearray(_HEADER.pack(self.object_id, self.size, self.disk_id,
                                     self.checksum & 0xFFFFFFFF,
                                     self.front_length,
                                     len(self.chunk_positions)))
        if self.front_length:
            out += _FRONT.pack(self.front_offset)
        for pos in self.chunk_positions:
            out += _CHUNK.pack(pos.level, pos.slot)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, offset: int = 0) -> tuple["IndexRecord", int]:
        """Parse one record; returns (record, next_offset)."""
        object_id, size, disk_id, checksum, front_len, n_chunks = \
            _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        front_off = 0
        if front_len:
            (front_off,) = _FRONT.unpack_from(data, offset)
            offset += _FRONT.size
        positions = []
        for _ in range(n_chunks):
            level, slot = _CHUNK.unpack_from(data, offset)
            positions.append(ChunkPosition(level, slot))
            offset += _CHUNK.size
        return cls(object_id, size, disk_id, checksum, tuple(positions),
                   front_len, front_off), offset

    @property
    def record_bytes(self) -> int:
        """Serialized size of this record in bytes."""
        return (_HEADER.size + (_FRONT.size if self.front_length else 0)
                + _CHUNK.size * len(self.chunk_positions))


@dataclass
class PGIndex:
    """The index file of one placement group."""

    pg_id: int
    records: list[IndexRecord] = field(default_factory=list)

    def append(self, record: IndexRecord) -> None:
        """Append an item; returns its allocated slot."""
        self.records.append(record)

    def lookup(self, object_id: int) -> IndexRecord:
        """Find a record by object id; raises KeyError if absent."""
        for record in self.records:
            if record.object_id == object_id:
                return record
        raise KeyError(f"object {object_id} not in PG {self.pg_id} index")

    def serialize(self) -> bytes:
        """Encode to the binary wire format."""
        body = b"".join(r.serialize() for r in self.records)
        header = struct.pack("<QI", self.pg_id, len(self.records))
        payload = header + body
        return payload + struct.pack("<I", zlib.crc32(payload))

    @classmethod
    def deserialize(cls, data: bytes) -> "PGIndex":
        """Decode from the binary wire format."""
        if len(data) < 16:
            raise ValueError("index file truncated")
        payload, (crc,) = data[:-4], struct.unpack("<I", data[-4:])
        if zlib.crc32(payload) != crc:
            raise ValueError("index file checksum mismatch")
        pg_id, count = struct.unpack_from("<QI", payload, 0)
        offset = 12
        index = cls(pg_id)
        for _ in range(count):
            record, offset = IndexRecord.deserialize(payload, offset)
            index.append(record)
        return index

    @property
    def size_bytes(self) -> int:
        """Current size of this bucket/file in bytes."""
        return 12 + sum(r.record_bytes for r in self.records) + 4

    @property
    def bytes_per_object(self) -> float:
        """Average serialized record size."""
        if not self.records:
            return 0.0
        return self.size_bytes / len(self.records)

    def replica_disks(self, pg_disk_ids: tuple[int, ...],
                      n_replicas: int = INDEX_REPLICAS) -> list[int]:
        """The r + 1 disks of the PG holding this index (deterministic,
        spread by PG id so index load balances across the cluster)."""
        if n_replicas > len(pg_disk_ids):
            raise ValueError("more replicas than PG disks")
        start = self.pg_id % len(pg_disk_ids)
        return [pg_disk_ids[(start + i) % len(pg_disk_ids)]
                for i in range(n_replicas)]


def build_indexes(catalog) -> dict[int, PGIndex]:
    """Construct every PG's index from an ingested catalog.

    Chunk slots are assigned in ingest order per (level) bucket, exactly as
    :class:`repro.core.buckets.Bucket` allocates them.
    """
    from repro.core.layouts import REGENERATING_KIND

    indexes: dict[int, PGIndex] = {}
    slot_counters: dict[tuple[int, int, int], int] = {}
    front_counters: dict[tuple[int, int], int] = {}
    for obj in catalog.objects:
        if obj.role is None:
            continue  # striped layouts do not use RCStor bucket indexes
        placement = catalog.placement_of(obj)
        positions = []
        front_length = front_offset = 0
        for chunk in placement.chunks:
            if chunk.code_kind == REGENERATING_KIND:
                level = chunk.level or 1
                key = (obj.pg_id, obj.role, level)
                slot = slot_counters.get(key, 0)
                slot_counters[key] = slot + 1
                positions.append(ChunkPosition(level, slot % 65536))
            else:
                key2 = (obj.pg_id, obj.role)
                front_offset = front_counters.get(key2, 0)
                front_length = chunk.data_bytes
                front_counters[key2] = front_offset + front_length
        record = IndexRecord(
            object_id=obj.object_id, size=obj.size,
            disk_id=catalog.disk_of(obj),
            checksum=zlib.crc32(str(obj.object_id).encode()),
            chunk_positions=tuple(positions),
            front_length=front_length, front_offset=front_offset)
        indexes.setdefault(obj.pg_id, PGIndex(obj.pg_id)).append(record)
    return indexes

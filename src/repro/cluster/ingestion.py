"""The put path (§5.1): replicated staging + batch export to erasure coding.

RCStor, like Facebook F4, never erasure-codes on the write path: a put is
acknowledged once the object is triple-replicated, and background processes
later *export* staged objects in batch — partitioning, encoding whole
buckets, writing the chunks, and dropping the replicas.  Batching is what
"avoid[s] the costly overhead of parity updating": parities are computed
once per bucket instead of read-modify-written per object.

Two measurement entry points:

* :func:`measure_puts` — client-perceived put latency (transfer + 3
  replica writes, pipelined),
* :func:`run_batch_export` — background export throughput and its I/O
  amplification, optionally compared against per-object parity updates
  (:func:`parity_update_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.cluster.foreground import start_foreground_load
from repro.cluster.network import client_link
from repro.cluster.rcstor import RCStor, _Runtime

MB = 1 << 20

#: Staging replication factor (triple replication, as in F4/Haystack).
REPLICATION = 3


@dataclass
class PutReport:
    """Client-perceived put behaviour."""

    mean_latency: float
    p95_latency: float
    bytes_put: int
    write_amplification: float  # staged bytes written per object byte


@dataclass
class ExportReport:
    """Background batch-export behaviour."""

    makespan: float
    exported_bytes: int
    read_bytes: int
    written_bytes: int
    export_rate: float          # object bytes exported per second

    @property
    def io_amplification(self) -> float:
        """Disk bytes moved per exported object byte."""
        return (self.read_bytes + self.written_bytes) / self.exported_bytes


def _staging_disks(system: RCStor, object_id: int) -> list[int]:
    """Three disks on distinct nodes for the replicas (round-robin)."""
    config = system.config
    disks = []
    for replica in range(REPLICATION):
        node = (object_id + replica * 5) % config.n_nodes
        disk_in_node = object_id % config.disks_per_node
        disks.append(node * config.disks_per_node + disk_in_node)
    return disks


def measure_puts(system: RCStor, sizes, busy: bool = False,
                 seed: int = 0) -> PutReport:
    """Simulate sequential puts: client upload pipelined into 3 replica
    writes on distinct nodes; ack when the last replica is durable."""
    rt = _Runtime(system.config, seed, system.obs,
                  label=f"{system.name}/puts")
    if busy:
        start_foreground_load(
            rt.env, rt.disks, rt.rng,
            utilization=system.config.foreground_utilization,
            mean_read_bytes=system.config.foreground_read_bytes,
            invariants=rt.invariants)
    latencies: list[float] = []
    sizes = [int(s) for s in sizes]

    def one_put(object_id: int, size: int):
        client = rt.client(system.config.client_gbps)
        upload = rt.env.process(client.transfer(size))
        # Replica writes start as soon as bytes begin arriving (streamed);
        # they cannot finish before the upload does.
        writes = [rt.env.process(rt.disks[d].write(1, size, FOREGROUND))
                  for d in _staging_disks(system, object_id)]
        yield rt.env.all_of([upload] + writes)
        yield rt.env.timeout(system.config.repair_rpc_overhead)

    def driver():
        if busy:
            yield rt.env.timeout(1.0)
        for object_id, size in enumerate(sizes):
            t0 = rt.env.now
            yield rt.env.process(one_put(object_id, size))
            latencies.append(rt.env.now - t0)
            if rt.obs is not None:
                rt.span("put", "puts", t0, rt.env.now, size=size)

    rt.env.run(rt.env.process(driver()))
    rt.finalize()
    return PutReport(
        mean_latency=float(np.mean(latencies)),
        p95_latency=float(np.percentile(latencies, 95)),
        bytes_put=sum(sizes),
        write_amplification=float(REPLICATION),
    )


def run_batch_export(system: RCStor, sizes, concurrency: int = 64,
                     seed: int = 0) -> ExportReport:
    """Simulate the background export of staged objects into buckets.

    Per object: read one replica, gather to the exporting server, encode
    (parities amortised: ``r/k`` extra bytes per data byte), write the
    partitioned chunks to the destination disk and the parity share to the
    parity disks — all at background priority.
    """
    rt = _Runtime(system.config, seed, system.obs,
                  label=f"{system.name}/batch-export")
    env = rt.env
    config = system.config
    sizes = [int(s) for s in sizes]
    parity_factor = config.r / config.k
    stats = {"read": 0, "written": 0}
    gate = {"in_flight": 0, "wake": env.event()}

    def export_one(object_id: int, size: int):
        source = rt.disks[_staging_disks(system, object_id)[0]]
        yield env.process(source.read(1, size, BACKGROUND))
        stats["read"] += size
        server = object_id % config.n_nodes
        # Route through the fabric: the staged replica lives on another
        # node, so on a tiered cluster the export haul can cross racks.
        source_node = config.node_of(source.disk_id)
        yield env.process(rt.fabric.transfer(size, server,
                                             src_node=source_node))
        yield env.timeout(system.codec.encode_time(size))
        placement = system.layout.place(size)
        n_ios = max(1, placement.n_chunks)
        dest = rt.disks[(object_id * 7) % config.n_disks]
        yield env.process(dest.write(n_ios, size, BACKGROUND))
        parity_bytes = int(size * parity_factor)
        parity_disk = rt.disks[(object_id * 7 + 3) % config.n_disks]
        yield env.process(parity_disk.write(max(1, n_ios), parity_bytes,
                                            BACKGROUND))
        stats["written"] += size + parity_bytes

    def wrapper(object_id: int, size: int):
        yield env.process(export_one(object_id, size))
        gate["in_flight"] -= 1
        old, gate["wake"] = gate["wake"], env.event()
        old.succeed()

    def driver():
        for object_id, size in enumerate(sizes):
            while gate["in_flight"] >= concurrency:
                yield gate["wake"]
            gate["in_flight"] += 1
            env.process(wrapper(object_id, size))
            yield env.timeout(0)
        while gate["in_flight"] > 0:
            yield gate["wake"]

    start = env.now
    env.run(env.process(driver()))
    makespan = env.now - start
    rt.finalize()
    exported = sum(sizes)
    return ExportReport(
        makespan=makespan,
        exported_bytes=exported,
        read_bytes=stats["read"],
        written_bytes=stats["written"],
        export_rate=exported / makespan if makespan else 0.0,
    )


def parity_update_cost(object_size: int, k: int = 10, r: int = 4) -> dict:
    """Bytes moved to add one object with *in-place parity updates* versus
    batch export — the overhead the staging design avoids (§5.1).

    An in-place update of a coded stripe must read the old parities, and
    write data plus new parities.  Batch export writes data and parities
    once, with parities amortised across the whole bucket.
    """
    per_object_parity = object_size * r / k
    return {
        "update_in_place": {
            "read": per_object_parity,              # old parities
            "write": object_size + per_object_parity,
        },
        "batch_export": {
            "read": 0.0,
            "write": object_size + per_object_parity,
        },
        "saving_bytes": per_object_parity,
    }

"""RCStor, the paper's object store, as a calibrated cluster simulation.

Composition::

    config  = ClusterConfig(...)          # nodes, disks, PGs, k+r
    layout  = GeometricLayout(4*MB, 2)    # or Contiguous / Stripe / ...
    code    = ClayCode(10, 4)             # or RS / LRC / Hitchhiker
    system  = RCStor(config, layout, code)
    system.ingest(sizes)
    system.run_recovery(failed_disk)
    system.measure_degraded_reads(...)
"""

from repro.cluster.catalog import Catalog, StoredObject
from repro.cluster.codec import DEFAULT_CODEC, CodecModel, DecodeMatrixCache
from repro.cluster.disk import BACKGROUND, FOREGROUND, HDD, SSD, Disk, DiskModel
from repro.cluster.foreground import start_foreground_load
from repro.cluster.ingestion import measure_puts, run_batch_export
from repro.cluster.memory import MemoryPool
from repro.cluster.metadata import IndexRecord, PGIndex, build_indexes
from repro.cluster.network import GBPS, Fabric, Link, Nic, client_link
from repro.cluster.placement import (
    PlacementPolicy,
    get_policy,
    policy_names,
    register_policy,
)
from repro.cluster.profiles import HelperRead, ProfileCache, RepairProfile
from repro.cluster.rcstor import DegradedReadResult, RCStor, RecoveryReport
from repro.cluster.topology import Cluster, ClusterConfig, PlacementGroup

__all__ = [
    "Catalog",
    "StoredObject",
    "DEFAULT_CODEC",
    "CodecModel",
    "DecodeMatrixCache",
    "BACKGROUND",
    "FOREGROUND",
    "HDD",
    "SSD",
    "Disk",
    "DiskModel",
    "start_foreground_load",
    "measure_puts",
    "run_batch_export",
    "MemoryPool",
    "IndexRecord",
    "PGIndex",
    "build_indexes",
    "GBPS",
    "Fabric",
    "Link",
    "Nic",
    "client_link",
    "PlacementPolicy",
    "get_policy",
    "policy_names",
    "register_policy",
    "HelperRead",
    "ProfileCache",
    "RepairProfile",
    "DegradedReadResult",
    "RCStor",
    "RecoveryReport",
    "Cluster",
    "ClusterConfig",
    "PlacementGroup",
]

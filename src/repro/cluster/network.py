"""Network models: datacenter NICs, the rack/switch fabric, client links.

The cluster network (56 Gbps IPoIB in the paper) is modelled per-node as a
serialising resource — it is deliberately fast so that, as the paper
observes, "the network is not the bottleneck for recovery" (Table 3).  The
client edge is the scarce resource for degraded reads: each client gets a
dedicated 1 Gbps (configurable) link, and transfer over it dominates
degraded-read time (§2.1).

Beyond one rack the picture inverts: helper traffic funnels through
per-rack ToR uplinks into a shared (often oversubscribed) aggregation
layer, and *cross-rack* bytes become the scarce resource for repair.  The
:class:`Fabric` models this as a chain of serialising links per transfer —
sender NIC, sender ToR uplink, aggregation link, receiver ToR uplink,
receiver NIC — collapsing to just the receiver NIC when both endpoints
share a rack or when the cluster has a single rack (the paper's testbed),
in which case every simulated number is bit-identical to the flat model.
"""

from __future__ import annotations

from repro.cluster.disk import IO_OK
from repro.cluster.topology import ClusterConfig
from repro.sim import Environment, Interrupted, Resource

GBPS = 125 * (1 << 20)  # 1 Gbit/s in bytes/second (network gigabits)


class Link:
    """A serialising bandwidth pipe with byte accounting.

    With an :class:`~repro.obs.Observer` (and a metric ``kind``), the queue
    records wait-time histograms and depth / in-use gauges under
    ``{kind}.queue_wait`` / ``{kind}.queue_depth`` labelled by link name.
    ``run`` scopes the gauge labels to one measurement — time-weighted
    gauges cannot be shared across environments whose sim clocks each
    restart at zero.
    """

    def __init__(self, env: Environment, bandwidth: float, name: str = "link",
                 obs=None, kind: str | None = None, run: str | None = None):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = bandwidth
        self.name = name
        instance = name if run is None else f"{run}.{name}"
        self.queue = Resource(env, capacity=1, obs=obs,
                              kind=kind or "link", instance=instance)
        self.bytes_transferred = 0
        # Fault state: a FaultInjector (repro.faults) stretches transfer
        # times through this multiplier (transient NIC/ToR slowdown).
        self.speed_factor = 1.0

    def transfer_time(self, nbytes: int) -> float:
        """Serialisation time of nbytes through this pipe."""
        return nbytes / self.bandwidth

    def transfer(self, nbytes: int):
        """Process: serialise ``nbytes`` through the pipe.

        Returns :data:`~repro.cluster.disk.IO_OK`; held as a context
        manager so an interrupted transfer cancels or releases its grant.
        An interrupted transfer accounts the bytes it actually serialised
        (pro rata over its service time) before re-raising, so per-link
        byte counters stay honest under fault plans that kill in-flight
        work.
        """
        if nbytes < 0:
            raise ValueError("negative transfer")
        with self.queue.request() as req:
            yield req
            service = self.transfer_time(nbytes)
            if self.speed_factor != 1.0:
                service *= self.speed_factor
            started = self.env.now
            try:
                yield self.env.timeout(service)
            except Interrupted:
                if service > 0:
                    done = min((self.env.now - started) / service, 1.0)
                    self.bytes_transferred += int(nbytes * done)
                raise
        self.bytes_transferred += nbytes
        return IO_OK


class Nic(Link):
    """A node's network interface (default 56 Gbps IPoIB ~ 6.8 GB/s)."""

    def __init__(self, env: Environment, bandwidth: float = 50 * GBPS,
                 name: str = "nic", obs=None, run: str | None = None):
        # 56 Gbps IPoIB delivers roughly 6.5 GB/s of goodput in practice.
        super().__init__(env, bandwidth, name, obs=obs, kind="nic", run=run)


class Fabric:
    """The cluster interconnect: per-node NICs plus an optional rack tier.

    With ``config.n_racks == 1`` the fabric is *flat*: :meth:`route`
    resolves every transfer to the destination NIC alone, exactly the
    historical per-NIC model.  With more racks it is *tiered*: per-rack
    ToR uplinks (``tor-<rack>``) and a shared aggregation link (``agg``)
    join the chain for cross-rack transfers, and intra-rack transfers
    charge both endpoint NICs but skip the switch tier entirely.

    Transfers are store-and-forward: each hop serialises the full payload
    before the next begins, so a chain's latency is the sum of per-hop
    serialisation times and a slow shared hop (an oversubscribed ``agg``)
    backlogs every cross-rack flow behind it.  :meth:`gather` models a
    repair server pulling from many helpers: upstream legs run in
    parallel (distinct source chains), then the destination NIC
    serialises the combined payload, matching the flat model's accounting
    at the destination.

    ``links`` maps every link name to its object — the registry fault
    injectors use to aim ``nic_slow`` / ``tor_slow`` events.
    """

    def __init__(self, env: Environment, config: ClusterConfig,
                 obs=None, run: str | None = None):
        self.env = env
        self.config = config
        self.nics = [Nic(env, bandwidth=config.nic_bandwidth,
                         name=f"nic-{n}", obs=obs, run=run)
                     for n in range(config.n_nodes)]
        self.tors: list[Link] = []
        self.agg: Link | None = None
        if config.n_racks > 1:
            self.tors = [Link(env, config.tor_bandwidth, name=f"tor-{r}",
                              obs=obs, kind="tor", run=run)
                         for r in range(config.n_racks)]
            self.agg = Link(env, config.agg_bandwidth, name="agg",
                            obs=obs, kind="agg", run=run)
        self.links: dict[str, Link] = {
            link.name: link for link in (*self.nics, *self.tors)}
        if self.agg is not None:
            self.links[self.agg.name] = self.agg

    @property
    def tiered(self) -> bool:
        """Whether the switch tier exists (``n_racks > 1``)."""
        return bool(self.tors)

    def route(self, dst_node: int, src_node: int | None = None) -> list:
        """The link chain a transfer to ``dst_node`` serialises through.

        Without a source (client ingress, or the flat fabric) the chain is
        just the destination NIC.  Within a rack the switch tier is
        skipped.  A node never transits its own NIC twice.
        """
        if not self.tiered or src_node is None or src_node == dst_node:
            return [self.nics[dst_node]]
        src_rack = self.config.rack_of(src_node)
        dst_rack = self.config.rack_of(dst_node)
        if src_rack == dst_rack:
            return [self.nics[src_node], self.nics[dst_node]]
        return [self.nics[src_node], self.tors[src_rack], self.agg,
                self.tors[dst_rack], self.nics[dst_node]]

    def transfer(self, nbytes: int, dst_node: int,
                 src_node: int | None = None):
        """Process: move ``nbytes`` to ``dst_node`` over the route's hops."""
        for link in self.route(dst_node, src_node):
            yield from link.transfer(nbytes)
        return IO_OK

    def gather(self, dst_node: int, total_bytes: int, sources=None):
        """Process: pull ``total_bytes`` into ``dst_node`` from helpers.

        ``sources`` is an iterable of ``(src_node, nbytes)`` legs; on a
        tiered fabric each leg serialises through its upstream chain (all
        hops short of the destination NIC) in parallel, then the
        destination NIC serialises the combined payload.  Flat fabrics —
        or calls without source detail — skip straight to the destination
        NIC, byte-identical to the historical per-NIC model.
        """
        if self.tiered and sources:
            legs = [self.env.process(self._haul(dst_node, src, nbytes))
                    for src, nbytes in sources
                    if src != dst_node and nbytes > 0]
            if legs:
                yield self.env.all_of(legs)
        yield from self.nics[dst_node].transfer(total_bytes)
        return IO_OK

    def _haul(self, dst_node: int, src_node: int, nbytes: int):
        """Process: one gather leg — the chain minus the destination NIC."""
        for link in self.route(dst_node, src_node)[:-1]:
            yield from link.transfer(nbytes)


def client_link(env: Environment, gbps: float = 1.0, obs=None,
                run: str | None = None) -> Link:
    """A client edge link of the given bandwidth in Gbps (paper default 1)."""
    return Link(env, gbps * GBPS, name=f"client-{gbps}gbps",
                obs=obs, kind="client", run=run)

"""Network models: datacenter NICs and client edge links.

The cluster network (56 Gbps IPoIB in the paper) is modelled per-node as a
serialising resource — it is deliberately fast so that, as the paper
observes, "the network is not the bottleneck for recovery" (Table 3).  The
client edge is the scarce resource for degraded reads: each client gets a
dedicated 1 Gbps (configurable) link, and transfer over it dominates
degraded-read time (§2.1).
"""

from __future__ import annotations

from repro.cluster.disk import IO_OK
from repro.sim import Environment, Resource

GBPS = 125 * (1 << 20)  # 1 Gbit/s in bytes/second (network gigabits)


class Link:
    """A serialising bandwidth pipe with byte accounting.

    With an :class:`~repro.obs.Observer` (and a metric ``kind``), the queue
    records wait-time histograms and depth / in-use gauges under
    ``{kind}.queue_wait`` / ``{kind}.queue_depth`` labelled by link name.
    ``run`` scopes the gauge labels to one measurement — time-weighted
    gauges cannot be shared across environments whose sim clocks each
    restart at zero.
    """

    def __init__(self, env: Environment, bandwidth: float, name: str = "link",
                 obs=None, kind: str | None = None, run: str | None = None):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = bandwidth
        self.name = name
        instance = name if run is None else f"{run}.{name}"
        self.queue = Resource(env, capacity=1, obs=obs,
                              kind=kind or "link", instance=instance)
        self.bytes_transferred = 0
        # Fault state: a FaultInjector (repro.faults) stretches transfer
        # times through this multiplier (transient NIC slowdown).
        self.speed_factor = 1.0

    def transfer_time(self, nbytes: int) -> float:
        """Serialisation time of nbytes through this pipe."""
        return nbytes / self.bandwidth

    def transfer(self, nbytes: int):
        """Process: serialise ``nbytes`` through the pipe.

        Returns :data:`~repro.cluster.disk.IO_OK`; held as a context
        manager so an interrupted transfer cancels or releases its grant.
        """
        if nbytes < 0:
            raise ValueError("negative transfer")
        with self.queue.request() as req:
            yield req
            service = self.transfer_time(nbytes)
            if self.speed_factor != 1.0:
                service *= self.speed_factor
            yield self.env.timeout(service)
        self.bytes_transferred += nbytes
        return IO_OK


class Nic(Link):
    """A node's network interface (default 56 Gbps IPoIB ~ 6.8 GB/s)."""

    def __init__(self, env: Environment, bandwidth: float = 50 * GBPS,
                 name: str = "nic", obs=None, run: str | None = None):
        # 56 Gbps IPoIB delivers roughly 6.5 GB/s of goodput in practice.
        super().__init__(env, bandwidth, name, obs=obs, kind="nic", run=run)


def client_link(env: Environment, gbps: float = 1.0) -> Link:
    """A client edge link of the given bandwidth in Gbps (paper default 1)."""
    return Link(env, gbps * GBPS, name=f"client-{gbps}gbps")

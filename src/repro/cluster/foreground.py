"""Foreground (busy-system) load generation (§6.2 Methodology).

The paper's "busy" experiments run 15 x 8 clients issuing normal reads
continuously, leaving per-disk bandwidth fluctuating between ~30 and
~100 MB/s on HDDs.  We reproduce that as per-disk Poisson read generators
targeting a configurable utilization; reads are foreground-priority, so
they contend with measured degraded reads and pre-empt queued recovery I/O.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.disk import FOREGROUND, Disk
from repro.sim import Environment

MB = 1 << 20


def start_foreground_load(env: Environment, disks: list[Disk],
                          rng: np.random.Generator,
                          utilization: float = 0.5,
                          mean_read_bytes: int = 16 * MB,
                          mean_ios_per_read: int | None = None,
                          invariants=None) -> None:
    """Arm one generator per disk; runs for the lifetime of ``env``.

    The generators are open-ended, so at the end of a measurement they may
    legitimately hold disk grants mid-read; passing the runtime's
    ``invariants`` checker exempts this environment from the end-of-run
    resource-leak audit.
    """
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    if invariants is not None:
        invariants.exempt_env(env)
    if mean_ios_per_read is None:
        mean_ios_per_read = max(1, mean_read_bytes // (16 * MB) + 1)
    for disk in disks:
        service = disk.model.read_time(mean_ios_per_read, mean_read_bytes)
        mean_interarrival = service / utilization
        env.process(_generator(env, disk, rng, mean_interarrival,
                               mean_read_bytes, mean_ios_per_read))


def _generator(env: Environment, disk: Disk, rng: np.random.Generator,
               mean_interarrival: float, mean_bytes: int, mean_ios: int):
    while True:
        yield env.timeout(float(rng.exponential(mean_interarrival)))
        # Size jitter: half to double the mean, log-uniform.
        size = int(mean_bytes * 2 ** rng.uniform(-1, 1))
        ios = max(1, int(round(mean_ios * size / mean_bytes)))
        env.process(disk.read(ios, size, FOREGROUND))

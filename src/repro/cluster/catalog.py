"""Object catalog and directory-server placement (§5.1).

The directory server maps each object to a placement group (hash of its ID)
and — for single-disk layouts — to the least-filled data-role disk of that
PG, then records which bucket chunks the object occupies.  The catalog is
pure bookkeeping (no simulated time): per-(PG, role) chunk-size histograms
drive recovery task generation, and per-object records drive degraded
reads.  Metadata is ~40 bytes/object (§5.1), tracked for reporting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.core.layouts import (
    ContiguousLayout,
    Layout,
    ObjectPlacement,
    RS_KIND,
)

#: Approximate per-object index record size (§5.1 Metadata Management).
METADATA_BYTES_PER_OBJECT = 40


@dataclass(frozen=True)
class StoredObject:
    """Directory record of one ingested object."""

    object_id: int
    size: int
    pg_id: int
    role: int | None  # data role of its disk; None for striped layouts


@dataclass
class Catalog:
    """All placement state produced by ingesting a workload."""

    cluster: Cluster
    layout: Layout
    objects: list[StoredObject] = field(default_factory=list)
    #: (pg_id, role) -> {stored_chunk_size: count} for regenerating buckets
    chunk_counts: dict[tuple[int, int], Counter] = field(default_factory=dict)
    #: (pg_id, role) -> bytes in the RS-coded small-size-bucket
    small_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    #: (pg_id, role) -> total data bytes (fill level, used for balancing)
    role_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    #: (pg_id, role) -> running byte offset of contiguous packing
    _contig_fill: dict[tuple[int, int], int] = field(default_factory=dict)
    #: single-disk layouts: object_id -> its (immutable) placement
    _placements: dict[int, ObjectPlacement] = field(default_factory=dict)
    #: cached ``isinstance(layout, ContiguousLayout)`` — the ABC instance
    #: check costs a registry walk and sits on the per-chunk ingest path
    _contiguous: bool = field(init=False, default=False)

    def __post_init__(self):
        self._contiguous = isinstance(self.layout, ContiguousLayout)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, sizes) -> list[StoredObject]:
        """Place a batch of objects; returns their records."""
        new: list[StoredObject] = []
        for size in sizes:
            new.append(self._ingest_one(int(size)))
        return new

    def _ingest_one(self, size: int) -> StoredObject:
        object_id = len(self.objects)
        pg = self.cluster.pgs[object_id % len(self.cluster.pgs)]
        k = self.cluster.config.k
        if self.layout.spans_disks:
            obj = StoredObject(object_id, size, pg.pg_id, None)
            placement = self._place_striped(object_id, size)
            for chunk in placement.chunks:
                self._account_chunk(pg.pg_id, chunk.disk_index,
                                    chunk.stored_bytes, chunk.code_kind,
                                    chunk.data_bytes)
        else:
            role = min(range(k),
                       key=lambda d: self.role_bytes.get((pg.pg_id, d), 0))
            obj = StoredObject(object_id, size, pg.pg_id, role)
            placement = self._place_single_disk(pg.pg_id, role, size)
            self._placements[object_id] = placement
            for chunk in placement.chunks:
                self._account_chunk(pg.pg_id, role, chunk.stored_bytes,
                                    chunk.code_kind, chunk.data_bytes)
        self.objects.append(obj)
        return obj

    def _place_striped(self, object_id: int, size: int,
                       failed_role: int = 0) -> ObjectPlacement:
        from repro.core.layouts import StripeLayout

        if isinstance(self.layout, StripeLayout):
            # Rotate the starting disk per object (block-group placement).
            return self.layout.place(size, failed_disk=failed_role,
                                     start_role=object_id % self.cluster.config.k)
        return self.layout.place(size, failed_disk=failed_role)

    def _place_single_disk(self, pg_id: int, role: int, size: int) -> ObjectPlacement:
        if self._contiguous:
            fill = self._contig_fill.get((pg_id, role), 0)
            placement = self.layout.place(size, start_offset=fill)
            self._contig_fill[(pg_id, role)] = fill + size
            return placement
        return self.layout.place(size)

    def _account_chunk(self, pg_id: int, role: int, stored: int,
                       kind: str, data: int) -> None:
        key = (pg_id, role)
        role_bytes = self.role_bytes
        role_bytes[key] = role_bytes.get(key, 0) + data
        if kind == RS_KIND:
            small = self.small_bytes
            small[key] = small.get(key, 0) + stored
        elif self._contiguous:
            # Contiguous chunks are shared between unaligned neighbours;
            # bucket occupancy is derived from the packing fill instead.
            pass
        else:
            counts = self.chunk_counts.get(key)
            if counts is None:
                counts = self.chunk_counts[key] = Counter()
            counts[stored] += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def placement_of(self, obj: StoredObject, failed_role: int | None = None
                     ) -> ObjectPlacement:
        """The object's placement.

        Single-disk placements are fixed at ingest; striped placements take
        the failed role so ``needs_repair`` marks the right strips.
        """
        if obj.role is not None:
            return self._placements[obj.object_id]
        return self._place_striped(obj.object_id, obj.size, failed_role or 0)

    def disk_of(self, obj: StoredObject) -> int | None:
        """Global disk ID holding a single-disk object (None for striped)."""
        if obj.role is None:
            return None
        pg = self.cluster.pgs[obj.pg_id]
        return pg.disk_ids[obj.role]

    def objects_on_disk(self, disk_id: int) -> list[StoredObject]:
        """Single-disk objects that become unavailable when ``disk_id`` fails."""
        out = []
        for obj in self.objects:
            if obj.role is not None and self.disk_of(obj) == disk_id:
                out.append(obj)
        return out

    def objects_striped_over(self, disk_id: int) -> list[StoredObject]:
        """Striped objects with a data strip on ``disk_id``."""
        out = []
        for obj in self.objects:
            if obj.role is not None:
                continue
            pg = self.cluster.pgs[obj.pg_id]
            if disk_id in pg and pg.role_of(disk_id) < self.cluster.config.k:
                out.append(obj)
        return out

    # ------------------------------------------------------------------
    # Recovery inventory
    # ------------------------------------------------------------------
    def recovery_inventory(self, disk_id: int):
        """Per PG of the failed disk: (pg, failed_role, chunk-size histogram,
        small-bucket bytes) of everything stored on that disk.

        Parity buckets mirror the stripe geometry — physically a parity
        bucket has as many rows as the fullest data bucket of its PG/level.
        At production object counts (hundreds per PG) the fullest bucket is
        within a row or two of the mean, so we estimate parity rows by the
        mean data-role occupancy; this keeps scaled-down experiments free of
        small-sample max-inflation.
        """
        out = []
        k = self.cluster.config.k
        for pg in self.cluster.pgs_of_disk(disk_id):
            role = pg.role_of(disk_id)
            if role < k:
                chunks = self._data_chunks(pg.pg_id, role)
                small = self.small_bytes.get((pg.pg_id, role), 0)
            else:
                totals: Counter = Counter()
                for data_role in range(k):
                    totals.update(self._data_chunks(pg.pg_id, data_role))
                # Unbiased rounding of total/k: the fractional part becomes
                # one extra chunk in a pg-dependent share of PGs, so summed
                # over a disk's many PGs the byte count is right.
                chunks = Counter()
                for size, count in totals.items():
                    base, rem = divmod(count, k)
                    if rem and (pg.pg_id % k) < rem:
                        base += 1
                    if base:
                        chunks[size] = base
                small_total = sum(self.small_bytes.get((pg.pg_id, d), 0)
                                  for d in range(k))
                small = small_total // k
            out.append((pg, role, chunks, small))
        return out

    def _data_chunks(self, pg_id: int, role: int) -> Counter:
        """Chunk-size histogram of one data role's regenerating buckets."""
        if self._contiguous:
            fill = self._contig_fill.get((pg_id, role), 0)
            chunk = self.layout.chunk_size
            return Counter({chunk: -(-fill // chunk)}) if fill else Counter()
        return Counter(self.chunk_counts.get((pg_id, role), Counter()))

    # ------------------------------------------------------------------
    # Stats (§6.3 breakdowns)
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Total bytes (reads + writes) moved by this device."""
        return sum(o.size for o in self.objects)

    @property
    def small_bucket_bytes(self) -> int:
        """Bytes stored in RS-coded small-size-buckets."""
        return sum(self.small_bytes.values())

    @property
    def small_bucket_share(self) -> float:
        """Fraction of capacity held by small-size-buckets."""
        total = self.total_bytes
        return self.small_bucket_bytes / total if total else 0.0

    @property
    def average_chunk_size(self) -> float:
        """Mean regenerating-code chunk size (bytes)."""
        total = n = 0
        for counter in self.chunk_counts.values():
            for size, count in counter.items():
                total += size * count
                n += count
        return total / n if n else 0.0

    @property
    def metadata_bytes(self) -> int:
        """Directory metadata footprint (~40 B per object)."""
        return METADATA_BYTES_PER_OBJECT * len(self.objects)

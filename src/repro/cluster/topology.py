"""Cluster shape: nodes, disks, and placement groups (§5.1).

A placement group (PG) is a set of ``k + r`` disks on distinct nodes; the
position of a disk inside a PG is its *role* (code node index 0..n-1), and
roles are rotated across PGs so that every disk plays data and parity roles
— and, for Clay, all four Figure 2 repair cases — in equal measure.  When a
disk fails, every PG it belongs to recovers independently, recruiting the
bandwidth of many disks (the paper's reason for using PGs at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.disk import HDD, DiskModel


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the testbed (defaults: the paper's W1 rig)."""

    n_nodes: int = 16
    disks_per_node: int = 6
    disk_model: DiskModel = HDD
    k: int = 10
    r: int = 4
    n_pgs: int = 768
    pg_seed: int = 1
    client_gbps: float = 1.0
    #: §5.1 "Paralleled Recovery": weight unit and per-server weight cap.
    recovery_weight_unit: int = 4 * (1 << 20)
    recovery_global_weight: int = 512
    #: Fixed per-chunk-repair software cost: request fan-out, response
    #: synchronisation, HTTP-server overhead ("I/O latency, synchronization,
    #: software, etc." — §6.3 on W2 repair times).
    repair_rpc_overhead: float = 0.002
    #: Foreground (busy-system) load shape: per-disk read size and target
    #: disk utilization (§6.2 Methodology; set per workload).
    foreground_read_bytes: int = 32 * (1 << 20)
    foreground_utilization: float = 0.5
    #: Per-node NIC goodput (56 Gbps IPoIB in the paper's testbed ~ 6.5
    #: GB/s); lower it to study network-bound repair (the ECPipe regime).
    nic_bandwidth: float = 50 * 125 * (1 << 20)

    def __post_init__(self):
        if self.n_nodes < self.k + self.r:
            raise ValueError(
                f"need at least k+r={self.k + self.r} nodes, have {self.n_nodes}")
        if self.disks_per_node < 1 or self.n_pgs < 1:
            raise ValueError("invalid cluster shape")

    @property
    def n(self) -> int:
        """Total nodes/disks in the stripe (k + r)."""
        return self.k + self.r

    @property
    def n_disks(self) -> int:
        """Total disk count in the cluster."""
        return self.n_nodes * self.disks_per_node

    def node_of(self, disk_id: int) -> int:
        """Node index hosting a global disk id."""
        return disk_id // self.disks_per_node


@dataclass(frozen=True)
class PlacementGroup:
    """An ordered set of disks; index in ``disk_ids`` is the code role."""

    pg_id: int
    disk_ids: tuple[int, ...]

    def role_of(self, disk_id: int) -> int:
        """Code-node index (role) of a disk within this PG."""
        return self.disk_ids.index(disk_id)

    def __contains__(self, disk_id: int) -> bool:
        return disk_id in self.disk_ids


@dataclass
class Cluster:
    """The static cluster: config plus the PG map."""

    config: ClusterConfig
    pgs: list[PlacementGroup] = field(default_factory=list)

    def __post_init__(self):
        if not self.pgs:
            self.pgs = list(_build_pgs(self.config))
        self._pgs_of_disk: dict[int, list[PlacementGroup]] = {}
        for pg in self.pgs:
            for disk in pg.disk_ids:
                self._pgs_of_disk.setdefault(disk, []).append(pg)

    def pgs_of_disk(self, disk_id: int) -> list[PlacementGroup]:
        """All placement groups a disk belongs to."""
        return self._pgs_of_disk.get(disk_id, [])


def _build_pgs(config: ClusterConfig):
    """Randomised, balanced PG construction (seeded, deterministic).

    Each PG picks ``n`` distinct nodes at random and, within every chosen
    node, its least-PG-loaded disk — spreading membership (and therefore
    recovery helper traffic) evenly across all disks, like Ceph's CRUSH
    with the paper's "maximal amount of disks correlated to recovery"
    directory policy.  Roles rotate per PG so every disk plays all code
    node indices (and all four Clay repair cases) across its PGs.
    """
    import numpy as np

    rng = np.random.default_rng(config.pg_seed)
    n = config.n
    load = [0] * config.n_disks
    for p in range(config.n_pgs):
        nodes = rng.permutation(config.n_nodes)[:n]
        disks = []
        for node in nodes:
            first = int(node) * config.disks_per_node
            candidates = range(first, first + config.disks_per_node)
            best = min(candidates, key=lambda d: (load[d], d))
            load[best] += 1
            disks.append(best)
        rotation = p % n
        disks = disks[rotation:] + disks[:rotation]
        yield PlacementGroup(p, tuple(disks))

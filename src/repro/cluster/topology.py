"""Cluster shape: racks, nodes, disks, and placement groups (§5.1).

A placement group (PG) is a set of ``k + r`` disks on distinct nodes; the
position of a disk inside a PG is its *role* (code node index 0..n-1), and
roles are rotated across PGs so that every disk plays data and parity roles
— and, for Clay, all four Figure 2 repair cases — in equal measure.  When a
disk fails, every PG it belongs to recovers independently, recruiting the
bandwidth of many disks (the paper's reason for using PGs at all).

The paper's testbed is a single 16-node rack where "the network is not the
bottleneck for recovery" (Table 3).  At fleet scale the aggregation layer
is, so the cluster shape optionally carries a rack/switch hierarchy:
``n_racks`` racks of ``nodes_per_rack`` nodes behind per-rack ToR uplinks
and a shared, possibly oversubscribed aggregation link (see
:class:`~repro.cluster.network.Fabric`).  The default — one rack — keeps
the fabric degenerate and every simulated number bit-identical to the flat
model.

*Which* disks form a PG is delegated to a pluggable
:mod:`repro.cluster.placement` policy named by ``ClusterConfig.placement``;
the default ``flat_random`` policy reproduces the historical randomised
builder byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.disk import HDD, DiskModel

#: 1 Gbit/s in bytes/second (network gigabits); mirrors
#: :data:`repro.cluster.network.GBPS` without importing the network layer.
_GBPS = 125 * (1 << 20)


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the testbed (defaults: the paper's W1 rig)."""

    n_nodes: int = 16
    disks_per_node: int = 6
    disk_model: DiskModel = HDD
    k: int = 10
    r: int = 4
    n_pgs: int = 768
    pg_seed: int = 1
    client_gbps: float = 1.0
    #: §5.1 "Paralleled Recovery": weight unit and per-server weight cap.
    recovery_weight_unit: int = 4 * (1 << 20)
    recovery_global_weight: int = 512
    #: Fixed per-chunk-repair software cost: request fan-out, response
    #: synchronisation, HTTP-server overhead ("I/O latency, synchronization,
    #: software, etc." — §6.3 on W2 repair times).
    repair_rpc_overhead: float = 0.002
    #: Foreground (busy-system) load shape: per-disk read size and target
    #: disk utilization (§6.2 Methodology; set per workload).
    foreground_read_bytes: int = 32 * (1 << 20)
    foreground_utilization: float = 0.5
    #: Per-node NIC goodput (56 Gbps IPoIB in the paper's testbed ~ 6.5
    #: GB/s); lower it to study network-bound repair (the ECPipe regime).
    nic_bandwidth: float = 50 * 125 * (1 << 20)
    #: Rack/switch hierarchy.  ``n_racks == 1`` (the default) is the
    #: paper's flat single-rack fabric: transfers charge only the
    #: destination NIC and the ToR/aggregation knobs are inert.  With more
    #: racks, cross-rack transfers serialise through per-rack ToR uplinks
    #: (``tor_gbps``) and a shared aggregation link whose bandwidth is
    #: ``agg_gbps`` when set, else derived from the oversubscription ratio
    #: (total ToR uplink capacity / aggregation capacity).
    n_racks: int = 1
    nodes_per_rack: int = 0  # 0 = derived: ceil(n_nodes / n_racks)
    tor_gbps: float = 40.0
    agg_gbps: float = 0.0    # 0 = derived: n_racks * tor_gbps / oversub
    oversubscription: float = 1.0
    #: Placement-policy name (see :mod:`repro.cluster.placement`).
    placement: str = "flat_random"

    def __post_init__(self):
        if self.n_nodes < self.k + self.r:
            raise ValueError(
                f"need at least k+r={self.k + self.r} nodes, have {self.n_nodes}")
        if self.disks_per_node < 1 or self.n_pgs < 1:
            raise ValueError("invalid cluster shape")
        if self.n_racks < 1:
            raise ValueError(f"n_racks {self.n_racks} must be >= 1")
        if self.nodes_per_rack < 0:
            raise ValueError("nodes_per_rack must be >= 0 (0 = derived)")
        if self.n_racks * self.rack_size < self.n_nodes:
            raise ValueError(
                f"{self.n_racks} racks of {self.rack_size} nodes cannot "
                f"hold {self.n_nodes} nodes")
        if self.n_racks > 1:
            if self.tor_gbps <= 0:
                raise ValueError("hierarchical fabric needs tor_gbps > 0")
            if self.oversubscription < 1.0:
                raise ValueError(
                    f"oversubscription {self.oversubscription} must be >= 1 "
                    "(1 = non-blocking)")
            if self.agg_gbps < 0:
                raise ValueError("agg_gbps must be >= 0 (0 = derived)")

    @property
    def n(self) -> int:
        """Total nodes/disks in the stripe (k + r)."""
        return self.k + self.r

    @property
    def n_disks(self) -> int:
        """Total disk count in the cluster."""
        return self.n_nodes * self.disks_per_node

    def node_of(self, disk_id: int) -> int:
        """Node index hosting a global disk id."""
        return disk_id // self.disks_per_node

    # ------------------------------------------------------------------
    # Rack hierarchy
    # ------------------------------------------------------------------
    @property
    def rack_size(self) -> int:
        """Nodes per rack (explicit, or derived to cover all nodes)."""
        if self.nodes_per_rack:
            return self.nodes_per_rack
        return -(-self.n_nodes // self.n_racks)

    def rack_of(self, node: int) -> int:
        """Rack index hosting a node (alongside :meth:`node_of`)."""
        return node // self.rack_size

    def nodes_in_rack(self, rack: int) -> range:
        """Node indices physically in ``rack`` (the last rack may be short)."""
        first = rack * self.rack_size
        return range(first, min(first + self.rack_size, self.n_nodes))

    @property
    def tor_bandwidth(self) -> float:
        """ToR uplink bandwidth in bytes/second."""
        return self.tor_gbps * _GBPS

    @property
    def agg_bandwidth(self) -> float:
        """Aggregation-link bandwidth in bytes/second.

        Explicit ``agg_gbps`` wins; otherwise the link is sized so that
        ``total ToR uplink capacity / agg capacity == oversubscription``.
        """
        if self.agg_gbps:
            return self.agg_gbps * _GBPS
        return self.n_racks * self.tor_bandwidth / self.oversubscription


@dataclass(frozen=True)
class PlacementGroup:
    """An ordered set of disks; index in ``disk_ids`` is the code role."""

    pg_id: int
    disk_ids: tuple[int, ...]

    def __post_init__(self):
        # role_of / __contains__ sit on the repair hot path (every task,
        # every fault re-check); a tuple.index scan there is O(n) per call.
        object.__setattr__(
            self, "_role_by_disk",
            {disk: role for role, disk in enumerate(self.disk_ids)})

    def role_of(self, disk_id: int) -> int:
        """Code-node index (role) of a disk within this PG."""
        try:
            return self._role_by_disk[disk_id]
        except KeyError:
            raise ValueError(
                f"disk {disk_id} is not a member of PG {self.pg_id}") from None

    def __contains__(self, disk_id: int) -> bool:
        return disk_id in self._role_by_disk


@dataclass
class Cluster:
    """The static cluster: config plus the PG map."""

    config: ClusterConfig
    pgs: list[PlacementGroup] = field(default_factory=list)

    def __post_init__(self):
        if not self.pgs:
            # Deferred import: the placement package consumes this
            # module's ClusterConfig / PlacementGroup types.
            from repro.cluster.placement import get_policy

            policy = get_policy(self.config.placement)
            self.pgs = list(policy.build_pgs(self.config))
        self._pgs_of_disk: dict[int, list[PlacementGroup]] = {}
        for pg in self.pgs:
            for disk in pg.disk_ids:
                self._pgs_of_disk.setdefault(disk, []).append(pg)

    def pgs_of_disk(self, disk_id: int) -> list[PlacementGroup]:
        """All placement groups a disk belongs to."""
        return self._pgs_of_disk.get(disk_id, [])

    def rack_span(self, pg: PlacementGroup) -> int:
        """Number of distinct racks a PG's disks touch."""
        config = self.config
        return len({config.rack_of(config.node_of(d)) for d in pg.disk_ids})

"""Repair I/O profiles: the bridge between codes and the simulator.

A :class:`RepairProfile` condenses an erasure code's byte-exact
:class:`~repro.codes.base.RepairPlan` into what the disk and network models
need: per-helper (discontinuous I/O count, bytes) pairs plus the codec
output size.  Profiles are cached per ``(code, failed_role, chunk_size)``
and can be scaled for the 4 MB batching the paper applies to striped
recovery (where batching coalesces *requests* but, for regenerating codes,
"the scattered disk read pattern remains unchanged").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.base import ErasureCode


@dataclass(frozen=True)
class HelperRead:
    """What one surviving node reads for a repair.

    ``span`` is the byte extent covered by the scattered pattern, letting
    the disk model price the read-through alternative.
    """

    role: int
    n_ios: int
    nbytes: int
    span: int


@dataclass(frozen=True)
class RepairProfile:
    """Aggregate I/O shape of repairing one chunk."""

    failed_role: int
    chunk_size: int
    helpers: tuple[HelperRead, ...]
    output_bytes: int

    @property
    def total_read_bytes(self) -> int:
        """Total bytes read across all helpers."""
        return sum(h.nbytes for h in self.helpers)

    @property
    def read_traffic_ratio(self) -> float:
        """Bytes read per byte repaired."""
        return self.total_read_bytes / self.chunk_size

    def scaled(self, count: int) -> "RepairProfile":
        """Profile of ``count`` chunk repairs batched into one request."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count == 1:
            return self
        helpers = tuple(HelperRead(h.role, h.n_ios * count, h.nbytes * count,
                                   h.span * count)
                        for h in self.helpers)
        return RepairProfile(self.failed_role, self.chunk_size * count,
                             helpers, self.output_bytes * count)


class ProfileCache:
    """Builds and memoises repair profiles for one erasure code."""

    def __init__(self, code: ErasureCode):
        self.code = code
        self._cache: dict[tuple[int, int], RepairProfile] = {}

    def _rounded_chunk(self, chunk_size: int) -> int:
        """Chunk sizes must be a multiple of the sub-packetization; sizes
        that are not (e.g. Stripe-Max strips) are rounded up for timing."""
        alpha = self.code.alpha
        return max(alpha, -(-chunk_size // alpha) * alpha)

    def get(self, failed_role: int, chunk_size: int) -> RepairProfile:
        """Profile for (failed role, chunk size), building it on first use."""
        rounded = self._rounded_chunk(chunk_size)
        key = (failed_role, rounded)
        if key not in self._cache:
            plan = self.code.repair_plan(failed_role, rounded).coalesced()
            ios = plan.io_count_per_node()
            per_node = plan.read_bytes_per_node()
            spans = {}
            for node in per_node:
                segs = plan.segments_for_node(node)
                spans[node] = segs[-1].end - segs[0].offset
            helpers = tuple(HelperRead(node, ios[node], per_node[node], spans[node])
                            for node in sorted(per_node))
            self._cache[key] = RepairProfile(failed_role, rounded, helpers, rounded)
        return self._cache[key]

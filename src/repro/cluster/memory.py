"""HTTP-server memory pool for repaired chunks (§5.2).

Repaired chunks stay in memory for a bounded retention time so a client
can stream them; after that (or under memory pressure) they are flushed to
disk and further requests are redirected there — protecting the server
from slow clients holding gigabytes of repaired data.  Allocations are
capped at 256 MB per chunk, which is why the partitioner never produces
larger chunks (``max_chunk_size``).

Time is supplied by the caller (the simulation's ``env.now`` or wall
clock); the pool never sleeps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

MB = 1 << 20

#: Where a chunk lookup is served from.
IN_MEMORY = "memory"
ON_DISK = "disk"


class ChunkTooLargeError(ValueError):
    """Raised for allocations above the 256 MB cap (§5.2)."""


@dataclass
class PoolStats:
    allocations: int = 0
    memory_hits: int = 0
    disk_redirects: int = 0
    misses: int = 0
    flushes: int = 0
    expirations: int = 0


@dataclass
class _Entry:
    size: int
    expires_at: float


@dataclass
class MemoryPool:
    """Retention-bounded chunk cache with flush-to-disk spill."""

    capacity_bytes: int = 4 << 30
    max_chunk_bytes: int = 256 * MB
    retention: float = 30.0
    _entries: OrderedDict = field(default_factory=OrderedDict)
    _flushed: set = field(default_factory=set)
    _used: int = 0
    stats: PoolStats = field(default_factory=PoolStats)

    def __post_init__(self):
        if self.capacity_bytes <= 0 or self.max_chunk_bytes <= 0:
            raise ValueError("capacities must be positive")
        if self.retention <= 0:
            raise ValueError("retention must be positive")

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident in the pool."""
        return self._used

    @property
    def resident_chunks(self) -> int:
        """Number of chunks currently resident."""
        return len(self._entries)

    # ------------------------------------------------------------------
    def allocate(self, chunk_id, size: int, now: float) -> None:
        """Admit a freshly repaired chunk.

        Expired chunks are flushed first; if the pool is still full, the
        oldest resident chunks are flushed early (slow-client protection).
        """
        if size > self.max_chunk_bytes:
            raise ChunkTooLargeError(
                f"chunk of {size} bytes exceeds the "
                f"{self.max_chunk_bytes // MB} MB allocation cap")
        if size <= 0:
            raise ValueError("chunk size must be positive")
        if chunk_id in self._entries:
            raise ValueError(f"chunk {chunk_id!r} already resident")
        self.expire(now)
        while self._used + size > self.capacity_bytes and self._entries:
            self._flush_oldest()
        if self._used + size > self.capacity_bytes:
            raise ChunkTooLargeError("chunk larger than the whole pool")
        self._entries[chunk_id] = _Entry(size, now + self.retention)
        self._used += size
        self._flushed.discard(chunk_id)
        self.stats.allocations += 1

    def lookup(self, chunk_id, now: float) -> str | None:
        """IN_MEMORY, ON_DISK (flushed earlier), or None (never seen)."""
        self.expire(now)
        if chunk_id in self._entries:
            self.stats.memory_hits += 1
            return IN_MEMORY
        if chunk_id in self._flushed:
            self.stats.disk_redirects += 1
            return ON_DISK
        self.stats.misses += 1
        return None

    def release(self, chunk_id) -> None:
        """Drop a chunk whose transfer completed (no flush needed)."""
        entry = self._entries.pop(chunk_id, None)
        if entry is not None:
            self._used -= entry.size

    def expire(self, now: float) -> int:
        """Flush every chunk whose retention has elapsed."""
        expired = [cid for cid, e in self._entries.items()
                   if e.expires_at <= now]
        for cid in expired:
            self._flush(cid)
            self.stats.expirations += 1
        return len(expired)

    # ------------------------------------------------------------------
    def _flush_oldest(self) -> None:
        chunk_id = next(iter(self._entries))
        self._flush(chunk_id)

    def _flush(self, chunk_id) -> None:
        entry = self._entries.pop(chunk_id)
        self._used -= entry.size
        self._flushed.add(chunk_id)
        self.stats.flushes += 1

"""Pluggable placement policies: which disks form each placement group.

A policy is pure, seeded construction — it turns a
:class:`~repro.cluster.topology.ClusterConfig` into the ordered PG list the
:class:`~repro.cluster.topology.Cluster` serves, and nothing else.  All
randomness comes from ``config.pg_seed``, so a policy's output is a bit-
reproducible function of the config (the same contract the scenario runner
relies on for caching and ``--jobs`` fan-out).

Three built-in policies:

``flat_random``
    The historical builder, extracted verbatim: every PG picks ``n``
    distinct nodes at random and the least-loaded disk within each.  The
    default, and byte-identical to the pre-policy ``Cluster`` output.
``rack_aware``
    Rack-fault-tolerant minimal span: each PG spreads over the fewest
    least-loaded racks that keep any single rack's share at most ``r``
    chunks (a whole-rack loss stays repairable), which also concentrates
    repair helper traffic and cuts cross-rack bytes versus ``flat_random``.
``copyset``
    Copyset placement (Cidon et al., ATC '13) adapted to wide stripes: PGs
    draw from a small pool of permutation-chopped node sets instead of
    independent random sets, trading recovery parallelism for a much lower
    probability that some r+1 simultaneous node failures share a stripe.

Register custom policies with :func:`register_policy`; name them in
``ClusterConfig.placement``.
"""

from __future__ import annotations

from repro.cluster.placement.base import PlacementPolicy, least_loaded_disk
from repro.cluster.placement.copyset import CopysetPolicy
from repro.cluster.placement.flat import FlatRandomPolicy
from repro.cluster.placement.rack_aware import RackAwarePolicy

__all__ = [
    "PlacementPolicy",
    "FlatRandomPolicy",
    "RackAwarePolicy",
    "CopysetPolicy",
    "POLICIES",
    "get_policy",
    "register_policy",
    "policy_names",
    "least_loaded_disk",
]

#: Name -> policy instance.  Policies are stateless between builds, so one
#: shared instance per name is safe.
POLICIES: dict[str, PlacementPolicy] = {}


def register_policy(policy: PlacementPolicy) -> PlacementPolicy:
    """Add a policy to the registry (last registration wins)."""
    POLICIES[policy.name] = policy
    return policy


def get_policy(name: str | PlacementPolicy) -> PlacementPolicy:
    """Resolve a policy by registry name (instances pass through)."""
    if not isinstance(name, str):
        return name
    try:
        return POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown placement policy {name!r} (known: {known})") from None


def policy_names() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(POLICIES)


register_policy(FlatRandomPolicy())
register_policy(RackAwarePolicy())
register_policy(CopysetPolicy())

"""``rack_aware``: rack-fault-tolerant stripes with minimal rack span.

Two constraints pull against each other across racks.  Durability wants a
stripe *spread*: no rack may hold more than ``r`` of its chunks, or a
whole-rack outage makes the stripe unrecoverable.  Repair wants a stripe
*packed*: every helper chunk outside the repairing server's rack crosses
the ToR uplinks and the oversubscribed aggregation link (Rashmi et al.'s
Facebook measurement — cross-rack repair traffic is the binding constraint
at fleet scale).

This policy takes the durability constraint as a hard cap and then
minimises span: each PG occupies the fewest racks that keep any one rack's
share at most ``min(r, rack capacity)`` chunks, choosing the least-loaded
racks (and least-loaded nodes within them) so load still spreads cluster-
wide.  Versus ``flat_random`` — which scatters a 14-wide stripe over
nearly every rack — this cuts the cross-rack share of repair helper bytes
while *adding* a guarantee flat placement lacks: a rack loss never exceeds
the code's erasure budget.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.placement.base import least_loaded_disk, rotated
from repro.cluster.topology import ClusterConfig, PlacementGroup


class RackAwarePolicy:
    """Fewest-racks placement under a per-rack chunk cap of ``r``."""

    name = "rack_aware"

    def build_pgs(self, config: ClusterConfig) -> Iterable[PlacementGroup]:
        import numpy as np

        rng = np.random.default_rng(config.pg_seed)
        n = config.n
        disk_load = [0] * config.n_disks
        node_load = [0] * config.n_nodes
        rack_load = [0] * config.n_racks
        rack_nodes = [list(config.nodes_in_rack(r))
                      for r in range(config.n_racks)]
        # Per-rack chunk cap: the erasure budget, bounded by how many
        # distinct nodes the rack physically offers.  When the cluster is
        # too small to honour r (cap * n_racks < n), relax to an even
        # spread — the best any policy can do.
        cap = max(min(config.r, config.rack_size), -(-n // config.n_racks))
        for p in range(config.n_pgs):
            # Least-loaded racks first; ties broken by a per-PG random
            # permutation so equal-load racks are not always drained in
            # index order.
            tiebreak = rng.permutation(config.n_racks)
            order = sorted(range(config.n_racks),
                           key=lambda r: (rack_load[r], int(tiebreak[r])))
            disks: list[int] = []
            remaining = n
            for rack in order:
                if remaining <= 0:
                    break
                take = min(cap, len(rack_nodes[rack]), remaining)
                if take <= 0:
                    continue
                node_tiebreak = rng.permutation(len(rack_nodes[rack]))
                chosen = sorted(range(len(rack_nodes[rack])),
                                key=lambda i: (node_load[rack_nodes[rack][i]],
                                               int(node_tiebreak[i])))[:take]
                for i in chosen:
                    node = rack_nodes[rack][i]
                    node_load[node] += 1
                    disks.append(least_loaded_disk(config, node, disk_load))
                rack_load[rack] += take
                remaining -= take
            if remaining > 0:
                raise ValueError(
                    f"rack_aware cannot place a {n}-wide stripe on "
                    f"{config.n_nodes} nodes across {config.n_racks} racks")
            yield PlacementGroup(p, rotated(disks, p, n))

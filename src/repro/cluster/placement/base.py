"""The placement-policy protocol and shared construction helpers."""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.cluster.topology import ClusterConfig, PlacementGroup


@runtime_checkable
class PlacementPolicy(Protocol):
    """Pure, seeded PG construction.

    Implementations must be deterministic in ``config`` alone (draw all
    randomness from ``config.pg_seed``) and yield ``config.n_pgs`` groups of
    ``config.n`` disks on distinct nodes, with roles rotated per PG so that
    every disk plays all code-node indices across its PGs.
    """

    #: Registry name (what ``ClusterConfig.placement`` holds).
    name: str

    def build_pgs(self, config: ClusterConfig) -> Iterable[PlacementGroup]:
        """Yield the cluster's placement groups in PG-id order."""
        ...


def least_loaded_disk(config: ClusterConfig, node: int,
                      load: list[int]) -> int:
    """The least-PG-loaded disk of ``node`` (lowest id on ties), with the
    pick accounted into ``load`` — the per-node step every builder shares."""
    first = node * config.disks_per_node
    candidates = range(first, first + config.disks_per_node)
    best = min(candidates, key=lambda d: (load[d], d))
    load[best] += 1
    return best


def rotated(disks: list[int], pg_id: int, n: int) -> tuple[int, ...]:
    """Role rotation: shift the disk order by ``pg_id % n`` so each disk
    plays every code-node index (and all four Clay repair cases) across
    its PGs."""
    rotation = pg_id % n
    return tuple(disks[rotation:] + disks[:rotation])

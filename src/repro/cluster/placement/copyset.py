"""``copyset``: a small pool of node sets instead of independent draws.

Random placement makes *every* combination of ``n`` nodes a potential
stripe, so once the cluster is moderately busy, almost any ``r + 1``
simultaneous node failures hit some stripe and lose data.  Copyset
placement (Cidon et al., ATC '13) caps that exposure: chop a few node
permutations into disjoint ``n``-wide sets and only ever place stripes on
those, shrinking the number of fatal failure combinations from
``C(n_nodes, r+1)`` to roughly ``pool_size * C(n, r+1)`` at the price of
less recovery parallelism (a failed disk's helpers concentrate on the few
nodes sharing its copysets).
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.placement.base import least_loaded_disk, rotated
from repro.cluster.topology import ClusterConfig, PlacementGroup


class CopysetPolicy:
    """Cycle PGs through permutation-chopped copysets (scatter width ~2n)."""

    name = "copyset"

    #: Number of seeded permutations chopped into the pool.  Two gives each
    #: node membership in ~2 copysets — the paper's sweet spot between
    #: data-loss probability and recovery scatter width.
    n_permutations = 2

    def build_pgs(self, config: ClusterConfig) -> Iterable[PlacementGroup]:
        import numpy as np

        rng = np.random.default_rng(config.pg_seed)
        n = config.n
        sets_per_perm = config.n_nodes // n
        if sets_per_perm < 1:
            raise ValueError(
                f"copyset needs at least n={n} nodes, have {config.n_nodes}")
        pool: list[list[int]] = []
        for _ in range(self.n_permutations):
            perm = [int(x) for x in rng.permutation(config.n_nodes)]
            pool.extend(perm[s * n:(s + 1) * n]
                        for s in range(sets_per_perm))
        load = [0] * config.n_disks
        for p in range(config.n_pgs):
            nodes = pool[p % len(pool)]
            disks = [least_loaded_disk(config, node, load) for node in nodes]
            yield PlacementGroup(p, rotated(disks, p, n))

"""``flat_random``: the historical rack-blind randomised builder.

Extracted verbatim from ``repro.cluster.topology._build_pgs`` — same rng
stream, same tie-breaks — so a cluster built with the default policy is
byte-identical to the pre-policy layout (pinned by
``results/expected_all_300.json.gz``).
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.placement.base import least_loaded_disk, rotated
from repro.cluster.topology import ClusterConfig, PlacementGroup


class FlatRandomPolicy:
    """Randomised, balanced PG construction (seeded, deterministic).

    Each PG picks ``n`` distinct nodes at random and, within every chosen
    node, its least-PG-loaded disk — spreading membership (and therefore
    recovery helper traffic) evenly across all disks, like Ceph's CRUSH
    with the paper's "maximal amount of disks correlated to recovery"
    directory policy.  Racks are ignored: a stripe lands wherever the node
    permutation says, which is the paper's single-rack world view.
    """

    name = "flat_random"

    def build_pgs(self, config: ClusterConfig) -> Iterable[PlacementGroup]:
        import numpy as np

        rng = np.random.default_rng(config.pg_seed)
        n = config.n
        load = [0] * config.n_disks
        for p in range(config.n_pgs):
            nodes = rng.permutation(config.n_nodes)[:n]
            disks = [least_loaded_disk(config, int(node), load)
                     for node in nodes]
            yield PlacementGroup(p, rotated(disks, p, n))

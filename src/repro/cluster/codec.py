"""Codec throughput model (§5.2 "Encoding Optimization").

The paper's SIMD C implementation reaches 22.3 GB/s encode, 18.5 GB/s
decode, and 5.0 GB/s single-node regeneration per 12-core server.  Our
Python codecs are obviously slower, so simulated time uses these published
rates rather than wall-clock codec time; the byte-level codecs remain the
source of *what* is read, not of how long arithmetic takes.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1 << 30


@dataclass(frozen=True)
class CodecModel:
    """Throughput (bytes/s) of the three codec operations."""

    encode_bandwidth: float = 22.3 * GB
    decode_bandwidth: float = 18.5 * GB
    regenerate_bandwidth: float = 5.0 * GB

    def encode_time(self, nbytes: int) -> float:
        """Time to encode nbytes at the published rate."""
        return nbytes / self.encode_bandwidth

    def decode_time(self, nbytes: int) -> float:
        """Multi-erasure decode of ``nbytes`` of output (RS-style path)."""
        return nbytes / self.decode_bandwidth

    def regenerate_time(self, nbytes: int) -> float:
        """Single-node repair producing ``nbytes`` of output."""
        return nbytes / self.regenerate_bandwidth


DEFAULT_CODEC = CodecModel()

"""Codec throughput model (§5.2 "Encoding Optimization") and decode cache.

The paper's SIMD C implementation reaches 22.3 GB/s encode, 18.5 GB/s
decode, and 5.0 GB/s single-node regeneration per 12-core server.  Our
Python codecs are obviously slower, so simulated time uses these published
rates rather than wall-clock codec time; the byte-level codecs remain the
source of *what* is read, not of how long arithmetic takes.

:class:`DecodeMatrixCache` complements the model on the byte-level side: a
cluster repairing one failed disk decodes thousands of stripes with the
*same* erasure pattern, and the Gauss-Jordan solve that derives the decode
matrix is pure overhead after the first stripe.  The cache memoizes the
direct reconstruction matrix (erased chunks as a linear map of the
available chunks) in a bounded LRU keyed by (code, erasure pattern).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.codes.base import ScalarLinearCode
from repro.gf.field import gf_xor_mul_into
from repro.gf.matrix import mat_mul

GB = 1 << 30


@dataclass(frozen=True)
class CodecModel:
    """Throughput (bytes/s) of the three codec operations."""

    encode_bandwidth: float = 22.3 * GB
    decode_bandwidth: float = 18.5 * GB
    regenerate_bandwidth: float = 5.0 * GB

    def encode_time(self, nbytes: int) -> float:
        """Time to encode nbytes at the published rate."""
        return nbytes / self.encode_bandwidth

    def decode_time(self, nbytes: int) -> float:
        """Multi-erasure decode of ``nbytes`` of output (RS-style path)."""
        return nbytes / self.decode_bandwidth

    def regenerate_time(self, nbytes: int) -> float:
        """Single-node repair producing ``nbytes`` of output."""
        return nbytes / self.regenerate_bandwidth


DEFAULT_CODEC = CodecModel()


class DecodeMatrixCache:
    """Bounded LRU of reconstruction matrices keyed by erasure pattern.

    For a :class:`~repro.codes.ScalarLinearCode` with generator ``G``, the
    erased chunks are ``G[erased] @ R @ chunks[available]`` where ``R`` is
    the data-solution matrix of the available rows.  The product
    ``M = G[erased] @ R`` depends only on the erasure pattern, so repeated
    decodes of the same pattern (every stripe of a failed disk) reuse one
    cached ``M`` and skip both the Gauss-Jordan solve and the matrix
    product.  ``decode`` applied through the cache is bit-identical to
    ``code.decode`` — same field, same row order — just without the
    per-stripe matrix derivation.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._matrices: OrderedDict[tuple, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._matrices)

    def clear(self) -> None:
        """Drop all cached matrices (stats are kept)."""
        self._matrices.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def matrix(self, code: ScalarLinearCode, available_nodes: Sequence[int],
               erased: Sequence[int]) -> np.ndarray:
        """The matrix M with ``chunks[erased] = M @ chunks[available]``.

        ``available_nodes`` and ``erased`` are normalized (sorted, deduped)
        before keying, matching ``ScalarLinearCode.decode``'s ordering.  The
        returned array must be treated as read-only.
        """
        avail = tuple(sorted(set(available_nodes) - set(erased)))
        want = tuple(sorted(set(erased)))
        key = (code.name, avail, want)
        cache = self._matrices
        m = cache.get(key)
        if m is not None:
            self.hits += 1
            cache.move_to_end(key)
            return m
        self.misses += 1
        solution = code.solution_matrix(avail)
        m = mat_mul(code.generator[list(want)], solution)
        cache[key] = m
        if len(cache) > self.capacity:
            cache.popitem(last=False)
        return m

    def decode(self, code: ScalarLinearCode,
               available: Mapping[int, np.ndarray], erased: Sequence[int],
               chunk_size: int) -> dict[int, np.ndarray]:
        """Recover the erased chunks via the cached reconstruction matrix."""
        erased_sorted = sorted(set(erased))
        usable = sorted(set(available) - set(erased_sorted))
        m = self.matrix(code, usable, erased_sorted)
        out: dict[int, np.ndarray] = {}
        for row, node in enumerate(erased_sorted):
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for idx, helper in enumerate(usable):
                gf_xor_mul_into(acc, int(m[row, idx]), available[helper])
            out[node] = acc
        return out

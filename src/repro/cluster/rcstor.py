"""RCStor: the paper's storage system, as a discrete-event simulation.

One :class:`RCStor` instance couples a cluster shape, a data layout, and an
erasure code.  Ingesting a workload populates the catalog; the three
measurement entry points mirror the paper's evaluation:

* :meth:`measure_normal_reads` — §6.2 "Normal Reads",
* :meth:`measure_degraded_reads` — degraded read times, idle or busy,
* :meth:`run_recovery` — full-disk recovery with the weighted global task
  queue of §5.1, returning makespan and Table 3's bandwidth numbers.

Simulated time uses the disk/network/codec models; *which bytes* move is
dictated by the byte-exact repair plans of :mod:`repro.codes`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cluster.catalog import Catalog, StoredObject
from repro.cluster.codec import DEFAULT_CODEC, CodecModel
from repro.cluster.disk import (
    BACKGROUND,
    FOREGROUND,
    IO_CORRUPT,
    IO_FAILED,
    IO_OK,
    Disk,
)
from repro.cluster.foreground import start_foreground_load
from repro.cluster.network import Fabric, Link, client_link
from repro.cluster.profiles import HelperRead, ProfileCache, RepairProfile
from repro.cluster.topology import Cluster, ClusterConfig, PlacementGroup
from repro.codes import LRCCode, RSCode
from repro.codes.base import ErasureCode
from repro.core.layouts import RS_KIND, Layout
from repro.faults import FaultInjector, FaultPlan
from repro.obs.observer import Observer, get_default_observer
from repro.sim import Environment, SimulationError

MB = 1 << 20

#: Fault-ladder bounds: how many times one repair retries before a recovery
#: task is requeued-or-abandoned, and before a degraded read stops arming
#: the hedge timeout and simply waits its helpers out.
MAX_REPAIR_ATTEMPTS = 5
MAX_HEDGED_ATTEMPTS = 3


@dataclass
class DegradedReadResult:
    """Timing breakdown of one degraded read (Figure 13's three bars).

    ``hedges_fired`` / ``hedge_wins`` count speculative backup read sets
    armed (and won) by the hedging race — both zero unless the read ran
    with a hedge timeout (:mod:`repro.cluster.qos`)."""

    total_time: float
    repair_time: float
    transfer_time: float
    object_size: int
    hedges_fired: int = 0
    hedge_wins: int = 0


@dataclass
class RecoveryReport:
    """Outcome of recovering one failed disk (Figure 9/10 y-axis, Table 3)."""

    makespan: float
    repaired_bytes: int
    n_tasks: int
    disk_bandwidth: float
    network_bandwidth: float
    # Fault-injection outcomes (all zero without a FaultPlan).
    tasks_requeued: int = 0
    tasks_escalated: int = 0
    tasks_abandoned: int = 0
    hedged_retries: int = 0
    # Rack-tier traffic (both zero on the flat single-rack fabric):
    # bytes serialised through ToR uplinks, and through the aggregation
    # link (= bytes that crossed racks).
    tor_bytes: int = 0
    cross_rack_bytes: int = 0

    @property
    def recovery_rate(self) -> float:
        """Bytes repaired per second of makespan."""
        return self.repaired_bytes / self.makespan if self.makespan else 0.0


@dataclass
class _RecoveryTask:
    pg: PlacementGroup
    profile: RepairProfile
    weight: int
    is_rs: bool
    attempts: int = 0


class _Runtime:
    """Per-measurement simulation state (fresh env + resources).

    When an :class:`~repro.obs.Observer` is attached, the runtime registers
    itself as a trace *process* (its sim clock restarts at zero), wires the
    engine hooks, instruments every disk and NIC queue, and offers
    :meth:`span` for recording sim-time intervals on named tracks.
    """

    def __init__(self, config: ClusterConfig, seed: int,
                 obs: Observer | None = None, label: str = "run",
                 faults: FaultPlan | None = None):
        self.obs = obs
        self.label = label
        self.invariants = getattr(obs, "invariants", None) \
            if obs is not None else None
        self.env = Environment(
            trace_hooks=obs.engine_hooks if obs is not None else None)
        self.pid = obs.tracer.process(label) if obs is not None else 0
        # Telemetry is duck-typed off the observer: a timeline (if armed)
        # names this measurement's sample segment after the trace label.
        timeline = getattr(obs, "timeline", None) if obs is not None else None
        if timeline is not None:
            timeline.set_label(self.env, f"{self.pid}:{label}")
        run = str(self.pid) if obs is not None else None
        self.run = run
        self.disks = [Disk(self.env, config.disk_model, i, obs=obs, run=run)
                      for i in range(config.n_disks)]
        self.fabric = Fabric(self.env, config, obs=obs, run=run)
        self.nics = self.fabric.nics
        self.rng = np.random.default_rng(seed)
        # An *empty* plan is equivalent to no plan: no injector is built
        # and every fault branch stays cold, so the simulated numbers are
        # bit-identical to an unfaulted run.
        self.faults: FaultInjector | None = None
        if faults:
            self.faults = FaultInjector(self.env, self.disks, self.nics,
                                        faults, obs=obs,
                                        links=self.fabric.links)
            if obs is not None:
                self.faults.span_cb = (
                    lambda name, start, end, **args:
                    self.span(name, "faults", start, end, **args))

    def client(self, gbps: float) -> Link:
        """A fresh client edge link.

        Instrumented only on tiered fabrics: the flat-fabric metric
        snapshot is pinned byte-for-byte by the expected-results fixture,
        so client queue metrics may not appear there.
        """
        obs = self.obs if self.fabric.tiered else None
        return client_link(self.env, gbps, obs=obs, run=self.run)

    def span(self, name: str, track: str, start: float, end: float,
             **args) -> None:
        """Record a finished sim-time span on this runtime's timeline."""
        tracer = self.obs.tracer
        tracer.complete(name, self.pid, tracer.track(self.pid, track),
                        start, end, **args)

    def finalize(self) -> None:
        """Fold end-of-measurement resource statistics into the metrics."""
        if self.invariants is not None:
            self.invariants.audit_env(self.env)
        # Audit first (a real leak must still be visible), then close all
        # remaining processes so their resource releases land here rather
        # than at garbage-collection time during a later measurement.
        self.env.close()
        obs = self.obs
        if obs is None:
            return
        now = self.env.now
        run = f"{self.pid}:{self.label}"
        metrics = obs.metrics
        for disk in self.disks:
            metrics.gauge("disk.utilization", run=run, disk=disk.disk_id
                          ).set(disk.queue.utilization(), now)
        for node, nic in enumerate(self.nics):
            metrics.gauge("nic.utilization", run=run, node=node
                          ).set(nic.queue.utilization(), now)
        metrics.counter("disk.bytes_read", run=run).inc(
            sum(d.bytes_read for d in self.disks))
        metrics.counter("disk.bytes_written", run=run).inc(
            sum(d.bytes_written for d in self.disks))
        metrics.counter("nic.bytes_transferred", run=run).inc(
            sum(n.bytes_transferred for n in self.nics))
        if self.fabric.tiered:
            for rack, tor in enumerate(self.fabric.tors):
                metrics.gauge("tor.utilization", run=run, rack=rack
                              ).set(tor.queue.utilization(), now)
            metrics.gauge("agg.utilization", run=run
                          ).set(self.fabric.agg.queue.utilization(), now)
            metrics.counter("tor.bytes_transferred", run=run).inc(
                sum(t.bytes_transferred for t in self.fabric.tors))
            metrics.counter("agg.bytes_transferred", run=run).inc(
                self.fabric.agg.bytes_transferred)


class RCStor:
    """The storage system under one (layout, code) scheme."""

    def __init__(self, config: ClusterConfig, layout: Layout, code: ErasureCode,
                 codec: CodecModel = DEFAULT_CODEC, ecpipe: bool = False,
                 name: str | None = None, obs: Observer | None = None):
        if code.k != config.k or code.r != config.r:
            raise ValueError(f"code {code.name} does not match cluster "
                             f"({config.k},{config.r})")
        self._obs = obs
        self.config = config
        self.cluster = Cluster(config)
        self.layout = layout
        self.code = code
        self.codec = codec
        self.ecpipe = ecpipe
        self.name = name or f"{layout.name}/{code.name}"
        self.catalog = Catalog(self.cluster, layout)
        self.profiles = ProfileCache(code)
        self.rs_profiles = (self.profiles if isinstance(code, RSCode)
                            else ProfileCache(RSCode(config.k, config.r)))
        self._scalar_rebuild = isinstance(code, (RSCode, LRCCode))

    @property
    def obs(self) -> Observer | None:
        """This system's observer: the one given at construction, else the
        context-scoped default (see :func:`repro.obs.observed`)."""
        return self._obs if self._obs is not None else get_default_observer()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, sizes) -> list[StoredObject]:
        """Place a batch of objects into the catalog."""
        return self.catalog.ingest(sizes)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _codec_time(self, output_bytes: int, is_rs: bool) -> float:
        if is_rs or self._scalar_rebuild:
            return self.codec.decode_time(output_bytes)
        return self.codec.regenerate_time(output_bytes)

    def _profile(self, cache: ProfileCache, failed_role: int, size: int,
                 inv=None) -> RepairProfile:
        """Fetch a repair profile, byte-conservation-checked when the
        runtime carries an :class:`~repro.analysis.InvariantChecker`."""
        profile = cache.get(failed_role, size)
        if inv is not None:
            inv.check_repair_profile(cache.code, profile)
        return profile

    # ------------------------------------------------------------------
    # Fault ladder (repro.faults)
    # ------------------------------------------------------------------
    def _fault_counter(self, rt: _Runtime, name: str) -> None:
        if rt.obs is not None:
            rt.obs.metrics.counter(name).inc()

    def _live_roles(self, profile: RepairProfile,
                    failed_roles: set[int]) -> list[int]:
        """Survivor roles: neither being repaired nor crashed."""
        return [r for r in range(self.config.n)
                if r != profile.failed_role and r not in failed_roles]

    def _repick_profile(self, profile: RepairProfile, failed_roles: set[int],
                        rotation: int) -> RepairProfile:
        """Re-target a profile's helper reads onto live survivor roles,
        rotated so hedged retries don't re-hit the same straggler."""
        survivors = self._live_roles(profile, failed_roles)
        start = rotation % len(survivors)
        chosen = [survivors[(start + i) % len(survivors)]
                  for i in range(len(profile.helpers))]
        helpers = tuple(HelperRead(role, h.n_ios, h.nbytes, h.span)
                        for role, h in zip(chosen, profile.helpers))
        return RepairProfile(profile.failed_role, profile.chunk_size,
                             helpers, profile.output_bytes)

    def _decode_fallback(self, profile: RepairProfile,
                         failed_roles: set[int], rotation: int,
                         inv=None) -> RepairProfile | None:
        """Bottom of the ladder: MDS decode from any k live full chunks.

        Returns ``None`` when fewer than k survivors remain — the data is
        genuinely lost (more than r concurrent failures).
        """
        survivors = self._live_roles(profile, failed_roles)
        k = self.config.k
        if len(survivors) < k:
            return None
        start = rotation % len(survivors)
        chosen = [survivors[(start + i) % len(survivors)] for i in range(k)]
        nbytes = profile.output_bytes
        helpers = tuple(HelperRead(r, 1, nbytes, nbytes) for r in chosen)
        decode = RepairProfile(profile.failed_role, nbytes, helpers, nbytes)
        if inv is not None:
            inv.check_decode_profile(decode, k)
        return decode

    def _fallback_profile(self, profile: RepairProfile, is_rs: bool,
                          failed_roles: set[int], rotation: int, inv=None
                          ) -> tuple[RepairProfile | None, bool]:
        """One rung down the ladder for a profile with dead helpers.

        While enough survivors remain for the current plan shape, helpers
        are re-picked onto live roles (sound for any-k MDS reads, and for a
        regenerating profile whose d-survivor set is intact).  A
        regenerating profile that lost a helper is below its repair
        threshold and falls to full RS-style decode.  Returns
        ``(profile, is_rs)``; profile is ``None`` when unrecoverable.
        """
        survivors = self._live_roles(profile, failed_roles)
        if len(survivors) >= len(profile.helpers):
            return self._repick_profile(profile, failed_roles, rotation), is_rs
        return self._decode_fallback(profile, failed_roles, rotation,
                                     inv), True

    def _issue_helper_reads(self, rt: _Runtime, pg: PlacementGroup,
                            profile: RepairProfile, priority: int,
                            use_timeout: bool = True):
        """Sub-generator: issue one profile's helper reads, fault-aware.

        Returns ``"ok"`` | ``"timeout"`` | ``"failed"`` | ``"corrupt"``.
        On a hedge timeout the unfinished read processes are interrupted,
        which cancels their still-queued disk requests rather than leaking
        the grants (the reads hold their requests as context managers).
        """
        env = rt.env
        procs = [env.process(rt.disks[pg.disk_ids[h.role]].read(
            h.n_ios, h.nbytes, priority, span=h.span))
            for h in profile.helpers]
        all_done = env.all_of(procs)
        timeout = rt.faults.helper_timeout if use_timeout else None
        if timeout is not None:
            yield env.any_of([all_done, env.timeout(timeout)])
            if not all_done.triggered:
                for proc in procs:
                    if not proc.triggered:
                        proc.interrupt("helper-timeout")
                return "timeout"
            statuses = [proc.value for proc in procs]
        else:
            statuses = yield all_done
        if IO_FAILED in statuses:
            return "failed"
        if IO_CORRUPT in statuses:
            return "corrupt"
        return "ok"

    # ------------------------------------------------------------------
    # Hedged degraded reads (repro.cluster.qos)
    # ------------------------------------------------------------------
    def _fanout_race(self, rt: _Runtime, pg: PlacementGroup, primary: list,
                     spare_reads: list, priority: int):
        """Sub-generator: fan out spare-survivor legs and take the first
        ``len(primary)`` responses of the widened set.

        The any-k property of MDS reads is what makes this sound: every
        leg delivers an equally useful strip, so the read completes when
        *any* ``len(primary)`` of the primary + spare legs land — the
        slowest primary leg no longer gates the read.  The unfinished
        losers are interrupted, which cancels their queued disk requests
        rather than leaking the grants (reads hold their requests as
        context managers).  Returns 1 when a spare leg displaced a
        primary one (the hedge won), else 0.
        """
        env = rt.env
        backup = [env.process(rt.disks[pg.disk_ids[role]].read(
            n_ios, nbytes, priority, span=span))
            for role, n_ios, nbytes, span in spare_reads]
        legs = primary + backup
        need = len(primary)
        while sum(1 for leg in legs if leg.triggered) < need:
            yield env.any_of([leg for leg in legs if not leg.triggered])
        won = 0 if all(leg.triggered for leg in primary) else 1
        for leg in legs:
            if not leg.triggered:
                leg.interrupt("hedge-loser")
        return won

    def _hedged_helper_reads(self, rt: _Runtime, pg: PlacementGroup,
                             profile: RepairProfile, is_rs: bool,
                             priority: int, hedge_s: float):
        """Sub-generator: one profile's helper reads with a hedging race.

        The backup read set is armed only if the primary set is still in
        flight ``hedge_s`` seconds in.  Scalar / RS profiles fan out onto
        the spare survivor roles and take any-k (:meth:`_fanout_race`).
        A regenerating profile already reads all d = n-1 survivors, so no
        spare legs exist: the hedge races a full RS-style decode read set
        instead — structurally expensive, which is exactly the
        regenerating trade-off.  Returns ``(profile, is_rs, fired, won)``
        with the profile whose read set satisfied the repair, so gather
        volume and decode flavour follow the winner.
        """
        env = rt.env
        primary = [env.process(rt.disks[pg.disk_ids[h.role]].read(
            h.n_ios, h.nbytes, priority, span=h.span))
            for h in profile.helpers]
        all_done = env.all_of(primary)
        yield env.any_of([all_done, env.timeout(hedge_s)])
        if all_done.triggered:
            return profile, is_rs, 0, 0
        if is_rs or self._scalar_rebuild:
            used = {h.role for h in profile.helpers}
            spares = [r for r in self._live_roles(profile, set())
                      if r not in used]
            if not spares:
                yield all_done
                return profile, is_rs, 0, 0
            shape = profile.helpers[0]
            won = yield from self._fanout_race(
                rt, pg, primary,
                [(r, shape.n_ios, shape.nbytes, shape.span) for r in spares],
                priority)
            return profile, is_rs, 1, won
        fallback = self._decode_fallback(profile, set(), 1, rt.invariants)
        backup = [env.process(rt.disks[pg.disk_ids[h.role]].read(
            h.n_ios, h.nbytes, priority, span=h.span))
            for h in fallback.helpers]
        backup_done = env.all_of(backup)
        yield env.any_of([all_done, backup_done])
        losers = backup if all_done.triggered else primary
        for leg in losers:
            if not leg.triggered:
                leg.interrupt("hedge-loser")
        if all_done.triggered:
            return profile, is_rs, 1, 0
        return fallback, True, 1, 1

    def _repair_reads_faulted(self, rt: _Runtime, pg: PlacementGroup,
                              profile: RepairProfile, is_rs: bool,
                              priority: int):
        """Sub-generator: drive one repair's helper reads down the fault
        ladder until a full read set lands.

        Dead helpers re-pick (or escalate to RS decode below the
        regenerating threshold); hedge timeouts rotate the helper set and,
        for regenerating profiles that keep timing out, force the decode
        fallback so one straggler cannot stall a d-of-d read; corrupt
        reads simply retry.  After :data:`MAX_HEDGED_ATTEMPTS` the hedge
        timeout is disarmed and the read waits its helpers out.  Returns
        the (possibly rewritten) profile that was satisfied plus whether
        it decodes RS-style; raises when the PG became unrecoverable.
        """
        attempts = 0
        rotation = 1
        while True:
            failed_roles = {pg.role_of(d) for d in rt.faults.failed_disks
                            if d in pg}
            failed_roles.discard(profile.failed_role)
            if any(h.role in failed_roles for h in profile.helpers):
                profile, is_rs = self._fallback_profile(
                    profile, is_rs, failed_roles, rotation, rt.invariants)
                rotation += 1
                if profile is None:
                    raise SimulationError(
                        "degraded read unrecoverable: more than "
                        f"r={self.config.r} failures in one PG")
            status = yield from self._issue_helper_reads(
                rt, pg, profile, priority,
                use_timeout=attempts < MAX_HEDGED_ATTEMPTS)
            if status == "ok":
                return profile, is_rs
            attempts += 1
            if status == "timeout":
                self._fault_counter(rt, "repair.hedged_retries")
                rotation += 1
                # Disks may have crashed while the helper reads were in
                # flight; the snapshot from the top of the loop is stale.
                failed_roles = {pg.role_of(d) for d in rt.faults.failed_disks
                                if d in pg}
                failed_roles.discard(profile.failed_role)
                if is_rs or self._scalar_rebuild:
                    profile = self._repick_profile(profile, failed_roles,
                                                   rotation)
                elif attempts >= 2:
                    decode = self._decode_fallback(profile, failed_roles,
                                                   rotation, rt.invariants)
                    if decode is not None:
                        profile, is_rs = decode, True
            else:
                self._fault_counter(rt, f"repair.{status}_reads")

    # ------------------------------------------------------------------
    # Normal reads
    # ------------------------------------------------------------------
    def _normal_read_proc(self, rt: _Runtime, obj: StoredObject, client: Link,
                          priority: int = FOREGROUND):
        """Read an intact object: disk fetch(es) overlapped with transfer."""
        env = rt.env
        placement = self.catalog.placement_of(obj)
        started = env.event()
        if self.layout.spans_disks:
            pg = self.cluster.pgs[obj.pg_id]
            per_role: dict[int, int] = {}
            for chunk in placement.chunks:
                per_role[chunk.disk_index] = (per_role.get(chunk.disk_index, 0)
                                              + chunk.data_bytes)
            reads = [env.process(self._batch_read(
                rt.disks[pg.disk_ids[role]], 1, nbytes, started, priority))
                for role, nbytes in per_role.items()]
        else:
            disk = rt.disks[self.catalog.disk_of(obj)]
            reads = [env.process(self._batch_read(
                disk, max(1, placement.n_chunks), obj.size, started,
                priority))]

        def transfer_proc():
            yield started
            yield env.timeout(self.config.repair_rpc_overhead)
            yield env.process(client.transfer(obj.size))

        xfer = env.process(transfer_proc())
        yield env.all_of(reads + [xfer])

    def _batch_read(self, disk: Disk, n_ios: int, nbytes: int, started,
                    priority: int = FOREGROUND):
        req = disk.queue.request(priority)
        yield req
        if not started.triggered:
            started.succeed()
        try:
            yield disk.env.timeout(disk.model.read_time(n_ios, nbytes))
        finally:
            disk.queue.release(req)
        disk.bytes_read += nbytes
        disk.n_read_ios += n_ios

    def measure_normal_reads(self, objects: list[StoredObject], busy: bool = False,
                             seed: int = 0, warmup: float = 2.0) -> list[float]:
        """Simulate normal reads; returns per-read seconds."""
        rt = _Runtime(self.config, seed, self.obs,
                      label=f"{self.name}/normal-reads")
        if busy:
            start_foreground_load(
                rt.env, rt.disks, rt.rng,
                utilization=self.config.foreground_utilization,
                mean_read_bytes=self.config.foreground_read_bytes,
                invariants=rt.invariants)
        times: list[float] = []

        def driver():
            if busy:
                yield rt.env.timeout(warmup)
            for obj in objects:
                client = rt.client(self.config.client_gbps)
                t0 = rt.env.now
                yield rt.env.process(self._normal_read_proc(rt, obj, client))
                times.append(rt.env.now - t0)
                if rt.obs is not None:
                    rt.span("normal_read", "reads", t0, rt.env.now,
                            size=obj.size)

        rt.env.run(rt.env.process(driver()))
        rt.finalize()
        return times

    # ------------------------------------------------------------------
    # Degraded reads
    # ------------------------------------------------------------------
    @staticmethod
    def _overlaps(chunks, byte_range):
        """Per chunk: bytes of it inside ``byte_range`` (object data bytes).

        With no range, every chunk transfers all of its data.  Range reads
        start at the first related chunk and discard unneeded bytes (§5.2
        "Range Access Support").
        """
        if byte_range is None:
            return [c.data_bytes for c in chunks]
        start, length = byte_range
        end = start + length
        out = []
        pos = 0
        for chunk in chunks:
            lo = max(pos, start)
            hi = min(pos + chunk.data_bytes, end)
            out.append(max(0, hi - lo))
            pos += chunk.data_bytes
        return out

    def _gather_node(self, rt: _Runtime, pg: PlacementGroup,
                     node: int) -> int:
        """Where a repair's helper bytes funnel.

        On the flat fabric this is ``node`` itself — the paper's design,
        where any HTTP server reconstructs and rack locality does not
        exist.  On tiered fabrics the gather is mapped onto one of the
        stripe's member nodes (locality-aware repair placement): the
        reconstruction worker runs where part of the stripe already
        lives, so packing policies keep helper traffic behind the
        stripe's own ToRs.  The mapping consumes no extra randomness.
        """
        if not rt.fabric.tiered:
            return node
        node_of = self.config.node_of
        members = sorted({node_of(d) for d in pg.disk_ids})
        return members[node % len(members)]

    def _helper_sources(self, rt: _Runtime, pg: PlacementGroup,
                        profile: RepairProfile):
        """Per-helper ``(node, nbytes)`` gather legs for a tiered fabric.

        ``None`` on a flat fabric — legs are never built there, so the
        gather degenerates to the historical destination-NIC transfer and
        stays byte-identical to the pre-fabric model.
        """
        if not rt.fabric.tiered:
            return None
        node_of = self.config.node_of
        return [(node_of(pg.disk_ids[h.role]), h.nbytes)
                for h in profile.helpers]

    def _degraded_single_disk_proc(self, rt: _Runtime, obj: StoredObject,
                                   client: Link, result: DegradedReadResult,
                                   byte_range: tuple[int, int] | None = None,
                                   priority: int = FOREGROUND,
                                   hedge_s: float | None = None):
        """Geometric / Contiguous: repair chunks in order, pipeline the
        transfer of chunk i with the repair of chunk i+1 (Figure 8).

        ``priority`` is the disk-queue lane of the helper reads (tenant
        lanes, :mod:`repro.cluster.qos`); ``hedge_s`` arms the hedging
        race per chunk.  Both default to the historical behaviour, so the
        pinned measurement paths are byte-identical."""
        env = rt.env
        pg = self.cluster.pgs[obj.pg_id]
        failed_role = obj.role
        placement = self.catalog.placement_of(obj)
        overlaps = self._overlaps(placement.chunks, byte_range)
        chunks = [(c, n) for c, n in zip(placement.chunks, overlaps) if n > 0]
        ready = [env.event() for _ in chunks]
        server_node = self._gather_node(
            rt, pg, int(rt.rng.integers(self.config.n_nodes)))

        def repair_proc():
            t0 = env.now
            for i, (chunk, overlap) in enumerate(chunks):
                is_rs = chunk.code_kind == RS_KIND
                # RS-coded fronts repair at byte granularity; regenerating
                # chunks must repair the whole chunk and discard.
                size = overlap if is_rs else chunk.stored_bytes
                cache = self.rs_profiles if is_rs else self.profiles
                profile = self._profile(cache, failed_role, size,
                                        rt.invariants)
                t_read = env.now
                if rt.faults is not None:
                    profile, is_rs = yield from self._repair_reads_faulted(
                        rt, pg, profile, is_rs, priority)
                elif hedge_s is not None:
                    profile, is_rs, fired, won = yield from \
                        self._hedged_helper_reads(rt, pg, profile, is_rs,
                                                  priority, hedge_s)
                    result.hedges_fired += fired
                    result.hedge_wins += won
                else:
                    reads = [env.process(rt.disks[pg.disk_ids[h.role]].read(
                        h.n_ios, h.nbytes, priority, span=h.span))
                        for h in profile.helpers]
                    yield env.all_of(reads)
                if rt.obs is not None:
                    rt.span("helper_reads", "repair", t_read, env.now,
                            chunk=i, nbytes=profile.total_read_bytes)
                if not self.ecpipe:
                    t_gather = env.now
                    yield env.process(rt.fabric.gather(
                        server_node, profile.total_read_bytes,
                        self._helper_sources(rt, pg, profile)))
                    if rt.obs is not None:
                        rt.span("gather", "repair", t_gather, env.now,
                                chunk=i, nbytes=profile.total_read_bytes)
                codec_time = self._codec_time(profile.output_bytes, is_rs)
                rpc = self.config.repair_rpc_overhead
                yield env.timeout(codec_time + rpc)
                if rt.obs is not None:
                    now = env.now
                    rt.span("decode", "repair", now - rpc - codec_time,
                            now - rpc, chunk=i, nbytes=profile.output_bytes)
                    rt.span("locate", "repair", now - rpc, now, chunk=i)
                ready[i].succeed()
            result.repair_time = env.now - t0
            if rt.obs is not None:
                rt.span("repair", "repair", t0, env.now, chunks=len(chunks))

        def transfer_proc():
            t_busy = 0.0
            for i, (chunk, overlap) in enumerate(chunks):
                yield ready[i]
                t0 = env.now
                yield env.process(client.transfer(overlap))
                t_busy += env.now - t0
                if rt.obs is not None:
                    rt.span("transfer", "transfer", t0, env.now,
                            chunk=i, nbytes=overlap)
            result.transfer_time = t_busy

        env.process(repair_proc())
        yield env.process(transfer_proc())

    def _degraded_striped_proc(self, rt: _Runtime, obj: StoredObject,
                               failed_role: int, client: Link,
                               result: DegradedReadResult,
                               byte_range: tuple[int, int] | None = None,
                               priority: int = FOREGROUND,
                               hedge_s: float | None = None):
        """Stripe / Stripe-Max: fetch surviving strips in parallel, repair
        the failed disk's strips, pipeline the client transfer in strip
        order (§6.1's n-requests-first-k-responses rebuild).

        ``priority`` / ``hedge_s`` as in
        :meth:`_degraded_single_disk_proc` — defaults keep the pinned
        measurement paths byte-identical."""
        env = rt.env
        pg = self.cluster.pgs[obj.pg_id]
        placement = self.catalog.placement_of(obj, failed_role)
        overlaps = self._overlaps(placement.chunks, byte_range)
        range_has_missing = any(
            n > 0 and c.needs_repair
            for c, n in zip(placement.chunks, overlaps))
        chunks = [(c, n) for c, n in zip(placement.chunks, overlaps)
                  if n > 0 or (c.needs_repair is False and self._scalar_rebuild
                               and range_has_missing)]
        server_node = self._gather_node(
            rt, pg, int(rt.rng.integers(self.config.n_nodes)))

        available_done: dict[int, object] = {}
        per_role: dict[int, int] = {}
        for chunk, overlap in chunks:
            if not chunk.needs_repair:
                # Scalar row rebuild needs the *whole* surviving strips, not
                # just the requested overlap (Table 4: Stripe reads the full
                # object for a degraded range read).
                nbytes = (chunk.data_bytes
                          if self._scalar_rebuild and range_has_missing
                          else overlap)
                per_role[chunk.disk_index] = (per_role.get(chunk.disk_index, 0)
                                              + nbytes)
        for role, nbytes in per_role.items():
            available_done[role] = env.process(
                rt.disks[pg.disk_ids[role]].read(1, nbytes, priority))

        missing = [c for c, n in chunks if c.needs_repair and n > 0]
        missing_bytes = sum(c.stored_bytes for c in missing)
        repaired = env.event()

        def repair_proc():
            t0 = env.now
            if missing:
                gathered_bytes = missing_bytes
                decode_rs = False
                t_read = env.now
                if self._scalar_rebuild:
                    # Rebuild rows from strips already being fetched plus
                    # parity strips covering the failed disk's share.
                    extra = [env.process(rt.disks[pg.disk_ids[self.config.k]].read(
                        1, missing_bytes, priority))]
                    if isinstance(self.code, LRCCode):
                        # Non-MDS: needs k+1 responses (§6.1) — one more read.
                        local = self.config.k + self.code.group_of(failed_role)
                        extra.append(env.process(rt.disks[pg.disk_ids[local]].read(
                            1, missing_bytes, priority)))
                    if rt.faults is None and hedge_s is not None:
                        # Hedge the strip fetch: fan out legs on the spare
                        # parity roles and take the first len(primary)
                        # responses — any-k MDS row decode accepts any
                        # equally-sized set of live strips.
                        primary = list(available_done.values()) + extra
                        all_done = env.all_of(primary)
                        yield env.any_of([all_done, env.timeout(hedge_s)])
                        if not all_done.triggered:
                            used = set(per_role) | {self.config.k}
                            if isinstance(self.code, LRCCode):
                                used.add(self.config.k
                                         + self.code.group_of(failed_role))
                            spares = [r for r in range(self.config.n)
                                      if r != failed_role and r not in used]
                            if spares:
                                won = yield from self._fanout_race(
                                    rt, pg, primary,
                                    [(r, 1, missing_bytes, None)
                                     for r in spares], priority)
                                result.hedges_fired += 1
                                result.hedge_wins += won
                            else:
                                yield all_done
                        statuses = [IO_OK]
                    else:
                        statuses = yield env.all_of(
                            list(available_done.values()) + extra)
                    if rt.faults is not None \
                            and any(s != IO_OK for s in statuses):
                        # A strip read hit a crashed disk or corruption:
                        # fall to MDS row decode from any k live strips.
                        dead = {pg.role_of(d)
                                for d in rt.faults.failed_disks if d in pg}
                        dead.discard(failed_role)
                        decode = self._decode_fallback(
                            RepairProfile(failed_role, missing_bytes, (),
                                          missing_bytes),
                            dead, 1, rt.invariants)
                        if decode is None:
                            raise SimulationError(
                                "degraded read unrecoverable: more than "
                                f"r={self.config.r} failures in one PG")
                        yield from self._repair_reads_faulted(
                            rt, pg, decode, True, priority)
                    if rt.obs is not None:
                        rt.span("helper_reads", "repair", t_read, env.now,
                                nbytes=missing_bytes)
                    if not self.ecpipe:
                        t_gather = env.now
                        sources = None
                        if rt.fabric.tiered:
                            # Scalar row rebuild hauls the surviving strips
                            # plus the row-parity strip to the repair server.
                            node_of = self.config.node_of
                            sources = [(node_of(pg.disk_ids[role]), nbytes)
                                       for role, nbytes in per_role.items()]
                            sources.append(
                                (node_of(pg.disk_ids[self.config.k]),
                                 missing_bytes))
                        yield env.process(rt.fabric.gather(
                            server_node, missing_bytes, sources))
                        if rt.obs is not None:
                            rt.span("gather", "repair", t_gather, env.now,
                                    nbytes=missing_bytes)
                else:
                    # Regenerating code: batched sub-chunk reads from d helpers.
                    batch: dict[int, list[int]] = {}
                    for chunk in missing:
                        prof = self._profile(self.profiles, failed_role,
                                             chunk.stored_bytes,
                                             rt.invariants)
                        for h in prof.helpers:
                            acc = batch.setdefault(h.role, [0, 0, 0])
                            acc[0] += h.n_ios
                            acc[1] += h.nbytes
                            acc[2] += h.span
                    gather_sources = None
                    if rt.faults is None and hedge_s is not None:
                        # Regenerating sub-chunk reads touch all d = n-1
                        # survivors, so the hedge races a full RS-style
                        # decode read set against the batch.
                        batch_profile = RepairProfile(
                            failed_role, missing_bytes,
                            tuple(HelperRead(role, ios, nbytes, span)
                                  for role, (ios, nbytes, span)
                                  in batch.items()),
                            missing_bytes)
                        winner, decode_rs, fired, won = yield from \
                            self._hedged_helper_reads(
                                rt, pg, batch_profile, False, priority,
                                hedge_s)
                        result.hedges_fired += fired
                        result.hedge_wins += won
                        gathered_bytes = winner.total_read_bytes
                        gather_sources = self._helper_sources(rt, pg, winner)
                    elif rt.faults is None:
                        reads = [env.process(rt.disks[pg.disk_ids[role]].read(
                            ios, nbytes, priority, span=span))
                            for role, (ios, nbytes, span) in batch.items()]
                        yield env.all_of(reads)
                        gathered_bytes = sum(b for _, b, _s in batch.values())
                        if rt.fabric.tiered:
                            node_of = self.config.node_of
                            gather_sources = [
                                (node_of(pg.disk_ids[role]), nbytes)
                                for role, (_i, nbytes, _s) in batch.items()]
                    else:
                        # Aggregate the batch into one synthetic profile so
                        # the fault ladder can re-pick / escalate it whole.
                        batch_profile = RepairProfile(
                            failed_role, missing_bytes,
                            tuple(HelperRead(role, ios, nbytes, span)
                                  for role, (ios, nbytes, span)
                                  in batch.items()),
                            missing_bytes)
                        batch_profile, _ = yield from \
                            self._repair_reads_faulted(
                                rt, pg, batch_profile, False, priority)
                        gathered_bytes = batch_profile.total_read_bytes
                        gather_sources = self._helper_sources(
                            rt, pg, batch_profile)
                    if rt.obs is not None:
                        rt.span("helper_reads", "repair", t_read, env.now,
                                nbytes=gathered_bytes)
                    t_gather = env.now
                    yield env.process(rt.fabric.gather(
                        server_node, gathered_bytes, gather_sources))
                    if rt.obs is not None:
                        rt.span("gather", "repair", t_gather, env.now,
                                nbytes=gathered_bytes)
                codec_time = self._codec_time(missing_bytes, is_rs=decode_rs)
                rpc = self.config.repair_rpc_overhead
                yield env.timeout(codec_time + rpc)
                if rt.obs is not None:
                    now = env.now
                    rt.span("decode", "repair", now - rpc - codec_time,
                            now - rpc, nbytes=missing_bytes)
                    rt.span("locate", "repair", now - rpc, now)
            repaired.succeed()
            result.repair_time = env.now - t0
            if rt.obs is not None:
                rt.span("repair", "repair", t0, env.now,
                        missing_bytes=missing_bytes)

        def transfer_proc():
            t_busy = 0.0
            for i, (chunk, overlap) in enumerate(chunks):
                if overlap == 0:
                    continue
                if chunk.needs_repair:
                    yield repaired
                elif not available_done[chunk.disk_index].triggered:
                    yield available_done[chunk.disk_index]
                t0 = env.now
                yield env.process(client.transfer(overlap))
                t_busy += env.now - t0
                if rt.obs is not None:
                    rt.span("transfer", "transfer", t0, env.now,
                            chunk=i, nbytes=overlap)
            result.transfer_time = t_busy

        env.process(repair_proc())
        yield env.process(transfer_proc())

    def degraded_read_candidates(self, failed_disk: int) -> list[StoredObject]:
        """Objects rendered (partially) unavailable by a disk failure."""
        if self.layout.spans_disks:
            return self.catalog.objects_striped_over(failed_disk)
        return self.catalog.objects_on_disk(failed_disk)

    def measure_degraded_reads(self, objects: list[StoredObject],
                               failed_disk: int | None,
                               busy: bool = False, seed: int = 0,
                               warmup: float = 2.0,
                               ranges: list[tuple[int, int]] | None = None,
                               faults: FaultPlan | None = None,
                               ) -> list[DegradedReadResult]:
        """Sequentially measure degraded reads of the given unavailable
        objects (optionally under foreground load).

        ``failed_disk=None`` fails each object's *own* disk (rotating over
        the data roles of its PG for striped layouts) — at paper scale a
        single failed disk holds objects of every size, and this sampling
        mode reproduces that coverage in scaled-down populations.

        ``ranges`` (optional, one ``(offset, length)`` per object) measures
        ranged degraded reads instead of whole-object reads (§5.2).

        ``faults`` (optional) replays a :class:`~repro.faults.FaultPlan`
        during the measurement; helper reads then run the fault ladder
        (hedged retry on timeout, re-pick / decode on crashes).
        """
        if ranges is not None and len(ranges) != len(objects):
            raise ValueError("need one byte range per object")
        rt = _Runtime(self.config, seed, self.obs,
                      label=f"{self.name}/degraded-reads", faults=faults)
        if busy:
            start_foreground_load(
                rt.env, rt.disks, rt.rng,
                utilization=self.config.foreground_utilization,
                mean_read_bytes=self.config.foreground_read_bytes,
                invariants=rt.invariants)
        results: list[DegradedReadResult] = []
        # Timeline telemetry: handles hoisted out of the driver generator
        # (OBS601) and gated on an armed timeline so plain snapshots are
        # unchanged.
        h_latency = c_reads = None
        if self.obs is not None and getattr(self.obs, "timeline", None) \
                is not None:
            h_latency = self.obs.metrics.histogram("degraded.read_latency")
            c_reads = self.obs.metrics.counter("degraded.reads_completed")

        def driver():
            if busy:
                yield rt.env.timeout(warmup)
            for idx, obj in enumerate(objects):
                byte_range = ranges[idx] if ranges is not None else None
                client = rt.client(self.config.client_gbps)
                result = DegradedReadResult(0.0, 0.0, 0.0, obj.size)
                t0 = rt.env.now
                if self.layout.spans_disks:
                    if failed_disk is None:
                        if byte_range is not None:
                            # A ranged read is only degraded if it touches
                            # the failed strip: fail the first strip the
                            # range overlaps.
                            probe = self.catalog.placement_of(obj, 0)
                            overlaps = self._overlaps(probe.chunks, byte_range)
                            failed_role = next(
                                (c.disk_index for c, n in
                                 zip(probe.chunks, overlaps) if n > 0),
                                idx % self.config.k)
                        else:
                            failed_role = idx % self.config.k
                    else:
                        failed_role = self.cluster.pgs[obj.pg_id].role_of(
                            failed_disk)
                    yield rt.env.process(self._degraded_striped_proc(
                        rt, obj, failed_role, client, result, byte_range))
                else:
                    yield rt.env.process(self._degraded_single_disk_proc(
                        rt, obj, client, result, byte_range))
                result.total_time = rt.env.now - t0
                results.append(result)
                if h_latency is not None:
                    c_reads.inc()
                    h_latency.observe(result.total_time)
                if rt.obs is not None:
                    rt.span("degraded_read", "degraded-reads", t0, rt.env.now,
                            size=obj.size, repair_s=result.repair_time,
                            transfer_s=result.transfer_time)

        rt.env.run(rt.env.process(driver()))
        rt.finalize()
        return results

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _build_recovery_tasks(self, failed_disk: int,
                              inv=None) -> list[_RecoveryTask]:
        """Chunk-granularity recovery tasks, weighted by size (§5.1).

        Small chunks are batched toward 4 MB requests — the paper's
        explicit optimization for the striped baselines, which coalesces
        scalar-code reads into sequential I/O but leaves regenerating-code
        sub-chunk reads scattered ("the underlying data layout remains
        unchanged").
        """
        tasks: list[_RecoveryTask] = []
        unit = self.config.recovery_weight_unit
        batch_target = 4 * MB
        scalar = self.code.alpha == 1
        rotation = 0
        for pg, role, chunks, small in self.catalog.recovery_inventory(failed_disk):
            for size, count in sorted(chunks.items()):
                per_batch = max(1, batch_target // size) if size < batch_target else 1
                remaining = count
                while remaining > 0:
                    m = min(per_batch, remaining)
                    remaining -= m
                    profile = self.profiles.get(role, size).scaled(m)
                    if scalar and m > 1:
                        # Batched scalar reads are contiguous on disk.
                        profile = RepairProfile(
                            profile.failed_role, profile.chunk_size,
                            tuple(type(h)(h.role, 1, h.nbytes, h.nbytes)
                                  for h in profile.helpers),
                            profile.output_bytes)
                    if scalar and isinstance(self.code, RSCode):
                        profile = self._rotated_helpers(profile, rotation)
                        rotation += 1
                    if inv is not None:
                        inv.check_repair_profile(self.code, profile)
                    weight = max(1, round(profile.output_bytes / unit))
                    tasks.append(_RecoveryTask(pg, profile, weight, is_rs=False))
            # RS-coded small-size-bucket, recovered in ~4 MB pieces.
            remaining = small
            while remaining > 0:
                piece = min(batch_target, remaining)
                remaining -= piece
                profile = self._rotated_helpers(
                    self.rs_profiles.get(role, piece), rotation)
                rotation += 1
                if inv is not None:
                    inv.check_repair_profile(self.rs_profiles.code, profile)
                weight = max(1, round(piece / unit))
                tasks.append(_RecoveryTask(pg, profile, weight, is_rs=True))
        return tasks

    def _rotated_helpers(self, profile: RepairProfile, rotation: int
                         ) -> RepairProfile:
        """Spread RS-style any-k-of-n repairs across all survivors.

        The paper sends n requests and rebuilds from the first k responses
        (§6.1); across many recovery tasks that balances load over every
        surviving disk instead of hammering the first k.  MDS codes can
        decode from *any* k chunks, so rotating the helper set is sound.
        """
        survivors = [r for r in range(self.config.n)
                     if r != profile.failed_role]
        need = len(profile.helpers)
        start = rotation % len(survivors)
        chosen = [survivors[(start + i) % len(survivors)] for i in range(need)]
        helpers = tuple(HelperRead(new_role, h.n_ios, h.nbytes, h.span)
                        for new_role, h in zip(chosen, profile.helpers))
        return RepairProfile(profile.failed_role, profile.chunk_size,
                             helpers, profile.output_bytes)

    def _finish_recovery(self, rt: _Runtime, meta: dict,
                         makespan: float) -> RecoveryReport:
        """Common tail of every recovery entry point: task-conservation
        check, runtime finalization, and the report."""
        if rt.invariants is not None:
            rt.invariants.check_task_conservation(meta)
        rt.finalize()
        total_disk_bytes = sum(d.total_bytes for d in rt.disks)
        total_nic_bytes = sum(nic.bytes_transferred for nic in rt.nics)
        return RecoveryReport(
            makespan=makespan,
            repaired_bytes=meta["repaired_bytes"],
            n_tasks=meta["n_tasks"],
            disk_bandwidth=(total_disk_bytes / makespan / self.config.n_disks
                            if makespan else 0.0),
            network_bandwidth=(total_nic_bytes / makespan / self.config.n_nodes
                               if makespan else 0.0),
            tasks_requeued=meta["tasks_requeued"],
            tasks_escalated=meta["tasks_escalated"],
            tasks_abandoned=meta["tasks_abandoned"],
            hedged_retries=meta["hedged_retries"],
            tor_bytes=sum(t.bytes_transferred for t in rt.fabric.tors),
            cross_rack_bytes=(rt.fabric.agg.bytes_transferred
                              if rt.fabric.agg is not None else 0),
        )

    def run_node_recovery(self, node: int, seed: int = 0,
                          faults: FaultPlan | None = None) -> RecoveryReport:
        """Recover every disk of a failed node.

        Placement groups span distinct nodes, so a whole-node failure costs
        each affected PG exactly one disk — recovery stays on the optimal
        single-failure plans, just with ``disks_per_node`` times the work.
        """
        if not 0 <= node < self.config.n_nodes:
            raise ValueError(f"node {node} out of range")
        first = node * self.config.disks_per_node
        failed = list(range(first, first + self.config.disks_per_node))
        rt = _Runtime(self.config, seed, self.obs,
                      label=f"{self.name}/node-recovery", faults=faults)
        env = rt.env
        tasks: list[_RecoveryTask] = []
        for disk in failed:
            tasks.extend(self._build_recovery_tasks(disk, rt.invariants))
        done, meta = self._run_task_set(rt, deque(tasks), set(failed))
        start = env.now
        env.run(done)
        return self._finish_recovery(rt, meta, env.now - start)

    def _build_multi_failure_tasks(self, failed_disks: list[int],
                                   inv=None) -> list[_RecoveryTask]:
        """Tasks for PGs hit by more than one failure (§2.2).

        Multi-erasure repair cannot use the regenerating sub-chunk trick:
        Clay's decode needs the *full* chunks of every survivor, and scalar
        MDS codes need any k full chunks.  Single-failure PGs still use the
        optimal single-node profiles.
        """
        failed = set(failed_disks)
        tasks: list[_RecoveryTask] = []
        unit = self.config.recovery_weight_unit
        batch_target = 4 * MB
        for disk in failed_disks:
            for pg, role, chunks, small in self.catalog.recovery_inventory(disk):
                pg_failed_roles = sorted(pg.role_of(d) for d in failed
                                         if d in pg)
                if len(pg_failed_roles) <= 1:
                    continue  # handled by the single-failure path
                # The outer loop visits this PG once per failed disk it
                # holds; each visit rebuilds that disk's own buckets.
                survivors = [r for r in range(self.config.n)
                             if r not in pg_failed_roles]
                if self._scalar_rebuild or self.code.alpha == 1:
                    helper_roles = survivors[: self.config.k]
                else:
                    helper_roles = survivors  # Clay decode reads everyone
                for size, count in sorted(chunks.items()):
                    per_batch = max(1, batch_target // size) \
                        if size < batch_target else 1
                    remaining = count
                    while remaining > 0:
                        m = min(per_batch, remaining)
                        remaining -= m
                        total = size * m
                        helpers = tuple(HelperRead(r, max(1, m if size >= batch_target else 1),
                                                   total, total)
                                        for r in helper_roles)
                        profile = RepairProfile(role, total, helpers, total)
                        if inv is not None:
                            inv.check_decode_profile(profile,
                                                     len(helper_roles))
                        weight = max(1, round(total / unit))
                        tasks.append(_RecoveryTask(pg, profile, weight,
                                                   is_rs=True))
                if small:
                    helpers = tuple(HelperRead(r, 1, small, small)
                                    for r in survivors[: self.config.k])
                    profile = RepairProfile(role, small, helpers, small)
                    if inv is not None:
                        inv.check_decode_profile(
                            profile, len(survivors[: self.config.k]))
                    tasks.append(_RecoveryTask(pg, profile,
                                               max(1, round(small / unit)),
                                               is_rs=True))
        return tasks

    def run_multi_failure_recovery(self, failed_disks: list[int],
                                   seed: int = 0,
                                   faults: FaultPlan | None = None
                                   ) -> RecoveryReport:
        """Recover several concurrently failed disks.

        PGs that lost one disk recover with the optimal single-failure
        plans; PGs that lost several fall back to full MDS decode (the
        dominant-cost case the paper notes is rare — >98% of failures are
        single).
        """
        failed = set(failed_disks)
        if len(failed) < 1:
            raise ValueError("need at least one failed disk")
        if len(failed) > self.config.r:
            raise ValueError(f"more than r={self.config.r} concurrent "
                             "failures cannot be guaranteed recoverable")
        rt = _Runtime(self.config, seed, self.obs,
                      label=f"{self.name}/multi-failure-recovery",
                      faults=faults)
        env = rt.env
        tasks: list[_RecoveryTask] = []
        # Single-failure PGs: optimal plans, skipping multi-failure PGs.
        for disk in failed_disks:
            for task in self._build_recovery_tasks(disk, rt.invariants):
                other = [d for d in failed if d != disk and d in task.pg]
                if not other:
                    tasks.append(task)
        tasks += self._build_multi_failure_tasks(sorted(failed), rt.invariants)
        # Helpers must not read from any failed disk.
        alive_tasks: list[_RecoveryTask] = []
        for task in tasks:
            failed_roles = {task.pg.role_of(d) for d in failed if d in task.pg}
            if any(h.role in failed_roles for h in task.profile.helpers):
                survivors = [r for r in range(self.config.n)
                             if r not in failed_roles]
                need = len(task.profile.helpers)
                rotated = tuple(
                    HelperRead(survivors[i % len(survivors)], h.n_ios,
                               h.nbytes, h.span)
                    for i, h in enumerate(task.profile.helpers))
                task = _RecoveryTask(task.pg, RepairProfile(
                    task.profile.failed_role, task.profile.chunk_size,
                    rotated, task.profile.output_bytes), task.weight,
                    task.is_rs)
            alive_tasks.append(task)
        done, meta = self._run_task_set(rt, deque(alive_tasks), failed)
        start = env.now
        env.run(done)
        return self._finish_recovery(rt, meta, env.now - start)

    def _start_recovery(self, rt: _Runtime, failed_disk: int,
                        priority: int = BACKGROUND, weight_limit: int | None = None):
        """Arm the §5.1 recovery engine in an existing runtime.

        Returns ``(all_servers_done_event, meta)`` where meta carries the
        task count and repaired byte total.
        """
        tasks = deque(self._build_recovery_tasks(failed_disk, rt.invariants))
        return self._run_task_set(rt, tasks, {failed_disk}, priority,
                                  weight_limit)

    def _run_task_faulted(self, rt: _Runtime, task: _RecoveryTask,
                          server_node: int, priority: int,
                          failed_disks: set[int], pick_replacement, meta):
        """Process: one recovery task under fault injection.

        Returns ``("done", None)``, ``("requeue", task)`` — the
        replacement write hit a freshly crashed disk, so the task goes
        back to the global queue and a new replacement is picked — or
        ``("abandon", None)`` when the PG lost more than r chunks or the
        task keeps failing past :data:`MAX_REPAIR_ATTEMPTS`.
        """
        env = rt.env
        track = f"server-{server_node}"
        t_task = env.now
        profile, is_rs = task.profile, task.is_rs
        attempts = task.attempts
        rotation = attempts + 1
        while True:
            failed_roles = {task.pg.role_of(d) for d in failed_disks
                            if d in task.pg}
            failed_roles.discard(profile.failed_role)
            if any(h.role in failed_roles for h in profile.helpers):
                was_rs = is_rs
                profile, is_rs = self._fallback_profile(
                    profile, is_rs, failed_roles, rotation, rt.invariants)
                rotation += 1
                if profile is None:
                    return ("abandon", None)
                if is_rs and not was_rs:
                    meta["tasks_escalated"] += 1
                    self._fault_counter(rt, "repair.tasks_escalated")
            status = yield from self._issue_helper_reads(
                rt, task.pg, profile, priority,
                use_timeout=attempts < MAX_HEDGED_ATTEMPTS)
            if status == "ok":
                break
            attempts += 1
            if attempts >= MAX_REPAIR_ATTEMPTS:
                return ("abandon", None)
            if status == "timeout":
                meta["hedged_retries"] += 1
                self._fault_counter(rt, "repair.hedged_retries")
                rotation += 1
                # Crash callbacks may have grown ``failed_disks`` while the
                # helper reads were in flight; re-derive the role set.
                failed_roles = {task.pg.role_of(d) for d in failed_disks
                                if d in task.pg}
                failed_roles.discard(profile.failed_role)
                if is_rs or self._scalar_rebuild:
                    profile = self._repick_profile(profile, failed_roles,
                                                   rotation)
                elif attempts >= 2:
                    decode = self._decode_fallback(profile, failed_roles,
                                                   rotation, rt.invariants)
                    if decode is not None:
                        profile, is_rs = decode, True
                        meta["tasks_escalated"] += 1
                        self._fault_counter(rt, "repair.tasks_escalated")
            else:
                self._fault_counter(rt, f"repair.{status}_reads")
        if rt.obs is not None:
            rt.span("helper_reads", track, t_task, env.now,
                    nbytes=profile.total_read_bytes)
        t_gather = env.now
        yield env.process(rt.fabric.gather(
            self._gather_node(rt, task.pg, server_node),
            profile.total_read_bytes,
            self._helper_sources(rt, task.pg, profile)))
        if rt.obs is not None:
            rt.span("gather", track, t_gather, env.now,
                    nbytes=profile.total_read_bytes)
        codec_time = self._codec_time(profile.output_bytes, is_rs)
        rpc = self.config.repair_rpc_overhead
        yield env.timeout(codec_time + rpc)
        if rt.obs is not None:
            rt.span("decode", track, env.now - rpc - codec_time,
                    env.now - rpc, nbytes=profile.output_bytes)
            rt.span("locate", track, env.now - rpc, env.now)
        dest = pick_replacement(task.pg)
        t_write = env.now
        wstatus = yield env.process(dest.write(1, profile.output_bytes,
                                               priority))
        if wstatus != IO_OK:
            self._fault_counter(rt, "repair.failed_writes")
            if attempts + 1 >= MAX_REPAIR_ATTEMPTS:
                return ("abandon", None)
            return ("requeue", _RecoveryTask(task.pg, profile, task.weight,
                                             is_rs, attempts + 1))
        if rt.obs is not None:
            rt.span("write", track, t_write, env.now,
                    nbytes=profile.output_bytes, disk=dest.disk_id)
            rt.span("recovery_task", track, t_task, env.now,
                    weight=task.weight, nbytes=profile.output_bytes)
        return ("done", None)

    def _run_task_set(self, rt: _Runtime, tasks: deque,
                      failed_disks: set[int], priority: int = BACKGROUND,
                      weight_limit: int | None = None):
        """Drive a queue of recovery tasks through the HTTP servers.

        Without fault injection this is the paper's §5.1 engine verbatim.
        With a :class:`~repro.faults.FaultInjector` on the runtime, each
        task runs the failure-aware path (:meth:`_run_task_faulted`), a
        disk crash mid-run escalates affected queued tasks in place (the
        multi-failure path's full decode), and completed weight drives the
        injector's progress-triggered events.
        """
        env = rt.env
        meta = {"n_tasks": len(tasks),
                "repaired_bytes": sum(t.profile.output_bytes for t in tasks),
                "tasks_completed": 0, "tasks_requeued": 0,
                "tasks_abandoned": 0, "tasks_escalated": 0,
                "hedged_retries": 0}
        limit = (weight_limit if weight_limit is not None
                 else self.config.recovery_global_weight)
        # Timeline telemetry: handles hoisted out of the server loops (the
        # OBS601 lint forbids registry lookups in there) and gated on an
        # armed timeline, so plain runs register no extra metrics and their
        # snapshots stay byte-identical.
        timeline_on = (rt.obs is not None
                       and getattr(rt.obs, "timeline", None) is not None)
        c_tasks = c_bytes = None
        if timeline_on:
            c_tasks = rt.obs.metrics.counter("recovery.tasks_completed")
            c_bytes = rt.obs.metrics.counter("recovery.bytes_repaired")
        flightrec = (getattr(rt.obs, "flightrec", None)
                     if rt.obs is not None else None)
        replacement_rr = [0]

        def pick_replacement(pg: PlacementGroup) -> Disk:
            n_disks = self.config.n_disks
            while True:
                cand = replacement_rr[0] % n_disks
                replacement_rr[0] += 1
                if cand not in failed_disks and cand not in pg:
                    return rt.disks[cand]

        total_weight = sum(t.weight for t in tasks) or 1
        done_weight = [0]

        if rt.faults is not None:
            failed_disks |= rt.faults.failed_disks

            def on_crash(disk_id: int) -> None:
                # Second failure mid-recovery: escalate affected queued
                # tasks to the multi-failure path (full MDS decode /
                # re-picked helpers); running tasks handle it inline.
                failed_disks.add(disk_id)
                for i in range(len(tasks)):
                    t = tasks[i]
                    if disk_id not in t.pg:
                        continue
                    failed_roles = {t.pg.role_of(d) for d in failed_disks
                                    if d in t.pg}
                    failed_roles.discard(t.profile.failed_role)
                    if not any(h.role in failed_roles
                               for h in t.profile.helpers):
                        continue
                    new_profile, new_rs = self._fallback_profile(
                        t.profile, t.is_rs, failed_roles, i + 1,
                        rt.invariants)
                    if new_profile is None:
                        continue  # the runner will abandon it
                    tasks[i] = _RecoveryTask(t.pg, new_profile, t.weight,
                                             new_rs, t.attempts)
                    if new_rs and not t.is_rs:
                        meta["tasks_escalated"] += 1
                        self._fault_counter(rt, "repair.tasks_escalated")

            rt.faults.on_disk_failure(on_crash)

        def run_task(task: _RecoveryTask, server_node: int):
            track = f"server-{server_node}"
            t_task = env.now
            reads = [env.process(rt.disks[task.pg.disk_ids[h.role]].read(
                h.n_ios, h.nbytes, priority, span=h.span))
                for h in task.profile.helpers]
            yield env.all_of(reads)
            if rt.obs is not None:
                rt.span("helper_reads", track, t_task, env.now,
                        nbytes=task.profile.total_read_bytes)
            t_gather = env.now
            yield env.process(rt.fabric.gather(
                self._gather_node(rt, task.pg, server_node),
                task.profile.total_read_bytes,
                self._helper_sources(rt, task.pg, task.profile)))
            if rt.obs is not None:
                rt.span("gather", track, t_gather, env.now,
                        nbytes=task.profile.total_read_bytes)
            codec_time = self._codec_time(task.profile.output_bytes,
                                          task.is_rs)
            rpc = self.config.repair_rpc_overhead
            yield env.timeout(codec_time + rpc)
            if rt.obs is not None:
                rt.span("decode", track, env.now - rpc - codec_time,
                        env.now - rpc, nbytes=task.profile.output_bytes)
                rt.span("locate", track, env.now - rpc, env.now)
            dest = pick_replacement(task.pg)
            t_write = env.now
            yield env.process(dest.write(1, task.profile.output_bytes, priority))
            if rt.obs is not None:
                rt.span("write", track, t_write, env.now,
                        nbytes=task.profile.output_bytes, disk=dest.disk_id)
                rt.span("recovery_task", track, t_task, env.now,
                        weight=task.weight, nbytes=task.profile.output_bytes)

        def server_loop(server_node: int):
            weight_used = [0]
            wake = [env.event()]

            def wrapper(task: _RecoveryTask):
                yield env.process(run_task(task, server_node))
                meta["tasks_completed"] += 1
                if c_tasks is not None:
                    c_tasks.inc()
                    c_bytes.inc(task.profile.output_bytes)
                weight_used[0] -= task.weight
                old, wake[0] = wake[0], env.event()
                old.succeed()

            def wrapper_faulted(task: _RecoveryTask):
                status, requeued = yield env.process(self._run_task_faulted(
                    rt, task, server_node, priority, failed_disks,
                    pick_replacement, meta))
                if status == "done":
                    meta["tasks_completed"] += 1
                    if c_tasks is not None:
                        c_tasks.inc()
                        c_bytes.inc(task.profile.output_bytes)
                    done_weight[0] += task.weight
                elif status == "requeue":
                    meta["tasks_requeued"] += 1
                    self._fault_counter(rt, "repair.tasks_requeued")
                    # Requeue before releasing weight: this server is still
                    # alive to re-check the queue, so the task cannot be
                    # stranded after every other server has exited.
                    tasks.append(requeued)
                else:
                    meta["tasks_abandoned"] += 1
                    meta["repaired_bytes"] -= task.profile.output_bytes
                    self._fault_counter(rt, "repair.tasks_abandoned")
                    if flightrec is not None:
                        flightrec.incident(
                            "repair_task_abandoned", sim_time=env.now,
                            server_node=server_node, weight=task.weight,
                            attempts=task.attempts,
                            nbytes=task.profile.output_bytes)
                    done_weight[0] += task.weight
                if rt.faults.has_progress_events:
                    rt.faults.notify_progress(done_weight[0] / total_weight)
                weight_used[0] -= task.weight
                old, wake[0] = wake[0], env.event()
                old.succeed()

            run_one = wrapper if rt.faults is None else wrapper_faulted

            while True:
                if not tasks:
                    if weight_used[0] == 0:
                        return
                    yield wake[0]
                elif weight_used[0] + tasks[0].weight <= limit or weight_used[0] == 0:
                    task = tasks.popleft()
                    weight_used[0] += task.weight
                    env.process(run_one(task))
                    # Yield the queue so servers pull round-robin rather than
                    # one server draining the queue up to its weight cap.
                    yield env.timeout(0)
                else:
                    yield wake[0]

        servers = [env.process(server_loop(node))
                   for node in range(self.config.n_nodes)]
        return env.all_of(servers), meta

    def run_recovery(self, failed_disk: int, busy: bool = False,
                     seed: int = 0,
                     weight_limit: int | None = None,
                     faults: FaultPlan | None = None) -> RecoveryReport:
        """Recover all PGs of a failed disk; §5.1's paralleled recovery.

        Each of the ``n_nodes`` HTTP servers pulls tasks from the global
        queue under its weight cap; a task reads from the surviving disks
        of its PG (background priority), gathers over the server NIC,
        regenerates, and writes to a replacement disk.

        ``faults`` (optional) replays a :class:`~repro.faults.FaultPlan`
        during the run: tasks then use the failure-aware path (hedged
        helper reads, requeue on replacement-disk death), a second failure
        mid-recovery escalates affected PGs to the multi-failure decode,
        and the report carries the requeue/escalate/abandon counts.
        """
        rt = _Runtime(self.config, seed, self.obs,
                      label=f"{self.name}/recovery", faults=faults)
        env = rt.env
        if busy:
            start_foreground_load(
                env, rt.disks, rt.rng,
                utilization=self.config.foreground_utilization,
                mean_read_bytes=self.config.foreground_read_bytes,
                invariants=rt.invariants)
        start = env.now
        done, meta = self._start_recovery(rt, failed_disk,
                                          weight_limit=weight_limit)
        env.run(done)
        return self._finish_recovery(rt, meta, env.now - start)

    def measure_degraded_reads_during_recovery(
            self, objects: list[StoredObject], failed_disk: int,
            recovery_priority: int = BACKGROUND,
            seed: int = 0, faults: FaultPlan | None = None
            ) -> tuple[list[DegradedReadResult], RecoveryReport]:
        """Degraded reads issued *while* recovery runs (§5.1 IO Scheduling).

        With ``recovery_priority=BACKGROUND`` (RCStor's design) foreground
        degraded reads jump the per-disk queues ahead of recovery I/O; with
        ``FOREGROUND`` recovery competes head-on — the ablation for the
        paper's priority-lane design.
        """
        rt = _Runtime(self.config, seed, self.obs,
                      label=f"{self.name}/degraded-during-recovery",
                      faults=faults)
        env = rt.env
        recovery_done, meta = self._start_recovery(rt, failed_disk,
                                                   priority=recovery_priority)
        results: list[DegradedReadResult] = []

        def reader():
            for idx, obj in enumerate(objects):
                client = rt.client(self.config.client_gbps)
                result = DegradedReadResult(0.0, 0.0, 0.0, obj.size)
                t0 = env.now
                if self.layout.spans_disks:
                    failed_role = idx % self.config.k
                    yield env.process(self._degraded_striped_proc(
                        rt, obj, failed_role, client, result))
                else:
                    yield env.process(self._degraded_single_disk_proc(
                        rt, obj, client, result))
                result.total_time = env.now - t0
                results.append(result)
                if rt.obs is not None:
                    rt.span("degraded_read", "degraded-reads", t0, env.now,
                            size=obj.size, repair_s=result.repair_time,
                            transfer_s=result.transfer_time)

        start = env.now
        reads = env.process(reader())
        env.run(env.all_of([recovery_done, reads]))
        report = self._finish_recovery(rt, meta, env.now - start)
        return results, report

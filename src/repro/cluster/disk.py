"""Disk models and simulated disks.

A :class:`DiskModel` converts an I/O pattern (number of discontinuous
positions + total bytes) into a service time; a :class:`Disk` wraps the
model in a priority FIFO queue (foreground reads ahead of background
recovery, §5.1 "IO Scheduling") and keeps traffic counters for the Table 3
bandwidth accounting.

Calibration
-----------
The HDD constants are an *effective* model of reads inside RCStor bucket
files (track-local seeks, not full-stroke): 190 MB/s sequential with 0.9 ms
per discontinuous I/O.  These reproduce the paper's own Figure 4 anchor
points for Clay(10,4) recovery on one disk — a harmonic-mean bandwidth of
~40 MB/s at 4 MB chunks rising to ~175 MB/s at 256 MB chunks (paper: 40 ->
~170).  The SSD constants (550 MB/s, 80 µs) put W2's absolute numbers in the
few-hundred-MB/s regime of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, PriorityResource

MB = 1 << 20

#: Queue priorities (§5.1): foreground user I/O preempts queued background
#: work such as recovery and data import.
FOREGROUND = 0
BACKGROUND = 1

#: I/O completion statuses returned by :meth:`Disk.read` / :meth:`Disk.write`
#: and :meth:`~repro.cluster.network.Link.transfer`.  Without fault
#: injection every operation returns :data:`IO_OK`; a crashed device
#: returns :data:`IO_FAILED` and a read that surfaces latent corruption
#: returns :data:`IO_CORRUPT` (see :mod:`repro.faults`).
IO_OK = "ok"
IO_FAILED = "failed"
IO_CORRUPT = "corrupt"


@dataclass(frozen=True)
class DiskModel:
    """Service-time model: ``n_ios * positioning + bytes / bandwidth``.

    When the caller supplies the byte ``span`` covered by a scattered read
    pattern, the model also prices the *read-through* strategy — one
    positioning plus streaming the whole span, discarding the gaps (what a
    drive's readahead effectively does for sub-chunk reads packed close
    together) — and charges whichever is cheaper.  This is what makes tiny
    regenerating-code sub-chunk reads cost ~¼ of sequential bandwidth
    rather than one full seek each, matching the paper's Stripe recovery
    numbers while preserving Figure 4's large-chunk behaviour.
    """

    name: str
    seek_time: float          # seconds per discontinuous I/O
    read_bandwidth: float     # bytes/second sequential
    write_bandwidth: float    # bytes/second sequential
    #: Fraction of sequential bandwidth achieved when streaming *through*
    #: a gapped pattern (rotational misses, discarded readahead).
    read_through_efficiency: float = 0.4

    def read_time(self, n_ios: int, nbytes: int, span: int | None = None) -> float:
        """Service time of a (batched) read request."""
        if n_ios < 0 or nbytes < 0:
            raise ValueError("negative I/O")
        scattered = n_ios * self.seek_time + nbytes / self.read_bandwidth
        if span is None or span <= nbytes:
            return scattered
        read_through = (self.seek_time
                        + span / (self.read_bandwidth * self.read_through_efficiency))
        return min(scattered, read_through)

    def write_time(self, n_ios: int, nbytes: int) -> float:
        """Service time of a (batched) write request."""
        if n_ios < 0 or nbytes < 0:
            raise ValueError("negative I/O")
        return n_ios * self.seek_time + nbytes / self.write_bandwidth

    def effective_read_bandwidth(self, io_size: int) -> float:
        """Bytes/s of a stream of ``io_size`` discontinuous reads."""
        return io_size / self.read_time(1, io_size)


#: Calibrated 7200 rpm SAS HDD (see module docstring).
HDD = DiskModel("hdd", seek_time=0.9e-3, read_bandwidth=190 * MB,
                write_bandwidth=185 * MB, read_through_efficiency=0.4)

#: SATA SSD.  The per-I/O cost is the *queue-amortised* command overhead:
#: batched sub-chunk reads run at NCQ depth, so a single discontinuous
#: position costs a few microseconds, not a full device round-trip — this
#: is what keeps W2's regenerating-code reads near device bandwidth
#: (Table 3: 400-570 MB/s for every non-striped scheme).
SSD = DiskModel("ssd", seek_time=1e-6, read_bandwidth=550 * MB,
                write_bandwidth=500 * MB, read_through_efficiency=0.85)


class Disk:
    """A simulated disk: one service queue plus traffic counters.

    With an :class:`~repro.obs.Observer`, the queue records per-lane wait
    histograms (``disk.queue_wait{lane=...}``) and queue-depth / in-use
    gauges labelled by disk id.  ``run`` scopes the gauge labels to one
    measurement — time-weighted gauges cannot be shared across environments
    whose sim clocks each restart at zero.
    """

    def __init__(self, env: Environment, model: DiskModel, disk_id: int,
                 obs=None, run: str | None = None):
        self.env = env
        self.model = model
        self.disk_id = disk_id
        instance = str(disk_id) if run is None else f"{run}.{disk_id}"
        self.queue = PriorityResource(env, capacity=1, obs=obs,
                                      kind="disk", instance=instance)
        self.bytes_read = 0
        self.bytes_written = 0
        self.n_read_ios = 0
        self.n_write_ios = 0
        # Fault state, mutated only by a FaultInjector (repro.faults): a
        # crashed disk fails all I/O, a slowed disk stretches service
        # times, and pending_corrupt reads surface latent corruption.
        self.failed = False
        self.speed_factor = 1.0
        self.pending_corrupt = 0

    def read(self, n_ios: int, nbytes: int, priority: int = FOREGROUND,
             span: int | None = None):
        """Process: queue for the disk and perform a (batched) read.

        Returns :data:`IO_OK`, or under fault injection :data:`IO_FAILED`
        (disk dead before/during service — no data delivered, counters
        untouched) / :data:`IO_CORRUPT` (bytes moved but unusable).  The
        request is held as a context manager, so a caller that abandons a
        queued read (hedged-retry timeout, :meth:`Process.interrupt`)
        cancels it rather than leaking the grant.
        """
        if self.failed:
            return IO_FAILED
        with self.queue.request(priority) as req:
            yield req
            if self.failed:
                return IO_FAILED
            service = self.model.read_time(n_ios, nbytes, span)
            if self.speed_factor != 1.0:
                service *= self.speed_factor
            yield self.env.timeout(service)
        if self.failed:
            return IO_FAILED
        self.bytes_read += nbytes
        self.n_read_ios += n_ios
        if self.pending_corrupt:
            self.pending_corrupt -= 1
            return IO_CORRUPT
        return IO_OK

    def write(self, n_ios: int, nbytes: int, priority: int = BACKGROUND):
        """Process: queue for the disk and perform a (batched) write.

        Returns :data:`IO_OK` / :data:`IO_FAILED` like :meth:`read`.
        """
        if self.failed:
            return IO_FAILED
        with self.queue.request(priority) as req:
            yield req
            if self.failed:
                return IO_FAILED
            service = self.model.write_time(n_ios, nbytes)
            if self.speed_factor != 1.0:
                service *= self.speed_factor
            yield self.env.timeout(service)
        if self.failed:
            return IO_FAILED
        self.bytes_written += nbytes
        self.n_write_ios += n_ios
        return IO_OK

    @property
    def total_bytes(self) -> int:
        """Total bytes (reads + writes) moved by this device."""
        return self.bytes_read + self.bytes_written

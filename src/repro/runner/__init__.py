"""Declarative scenario runner: parallel, cached, machine-readable.

The paper's evaluation is a grid of (scheme x workload x scale x seed)
simulations.  This package turns each grid point into a
:class:`Scenario` — a pure compute function plus JSON-safe parameters,
content-hashed for identity — and executes whole batches with
:func:`run_scenarios`: deterministic per-unit seed derivation, in-run
dedup, a JSON result cache under ``results/cache/``, and an optional
process-pool fan-out.  Every unit produces an :class:`ExperimentResult`
(typed rows + provenance + observability snapshot) that is bit-identical
across serial, parallel and cached executions.

Experiments (:mod:`repro.experiments`) declare ``scenarios()`` /
``render()`` pairs on top of this; the CLI
(``python -m repro.experiments``) adds ``--jobs/--seed/--no-cache/--json``.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, repro_version
from repro.runner.executor import (
    Capture,
    RunOptions,
    RunReport,
    UnitOutcome,
    execute_unit,
    run_scenarios,
)
from repro.runner.result import (
    RESULT_SCHEMA,
    ExperimentResult,
    Provenance,
    rows_of,
    typed_rows,
)
from repro.runner.scenario import Scenario, canonical_json, scenario

__all__ = [
    "Capture",
    "DEFAULT_CACHE_DIR",
    "ExperimentResult",
    "Provenance",
    "RESULT_SCHEMA",
    "ResultCache",
    "RunOptions",
    "RunReport",
    "Scenario",
    "UnitOutcome",
    "canonical_json",
    "execute_unit",
    "repro_version",
    "rows_of",
    "run_scenarios",
    "scenario",
    "typed_rows",
]

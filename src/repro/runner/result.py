"""The :class:`ExperimentResult` contract: typed rows plus provenance.

Every scenario unit produces one result.  ``rows`` is a list of plain
dicts, each the :func:`dataclasses.asdict` image of one typed result row
(``SchemeResult``, ``LatencyRow``, ...), so the same rows render to text,
serialize to the cache, and round-trip through ``--json`` byte-identically.
``provenance`` records everything needed to reproduce or audit the number:
the compute function and parameters, the derived seed and the root seed it
came from, the scenario content hash, and the simulator version.

Nothing here is timing- or cache-dependent: a result is a pure function of
its provenance, which is what makes parallel, serial and cached executions
comparable with ``diff``.  Wall-clock and hit/miss accounting live on the
runner's :class:`~repro.runner.executor.UnitOutcome` instead.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Sequence, Type, TypeVar

T = TypeVar("T")

#: Version of the serialized result layout (bump to invalidate caches
#: when the contract itself changes shape).
RESULT_SCHEMA = 1


@dataclass(frozen=True)
class Provenance:
    """Where a result's numbers came from."""

    fn: str
    params: dict[str, Any]
    scenario_hash: str
    seed: int | None
    root_seed: int | None
    sim_version: str
    schema: int = RESULT_SCHEMA


@dataclass
class ExperimentResult:
    """One scenario unit's output: typed rows, meta scalars, provenance,
    and (optionally) the unit's observability snapshot."""

    name: str
    rows: list[dict[str, Any]]
    provenance: Provenance
    meta: dict[str, Any] = field(default_factory=dict)
    obs: dict[str, Any] | None = None

    def to_doc(self) -> dict[str, Any]:
        """The JSON-object form (deterministic for a given provenance)."""
        doc: dict[str, Any] = {
            "name": self.name,
            "rows": self.rows,
            "meta": self.meta,
            "provenance": asdict(self.provenance),
        }
        if self.obs is not None:
            doc["obs"] = self.obs
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "ExperimentResult":
        return cls(
            name=doc["name"],
            rows=list(doc["rows"]),
            meta=dict(doc.get("meta", {})),
            provenance=Provenance(**doc["provenance"]),
            obs=doc.get("obs"),
        )


def rows_of(items: Iterable[Any]) -> list[dict[str, Any]]:
    """Dataclass instances -> the row-dict list a compute function returns."""
    return [asdict(item) for item in items]


def typed_rows(results: Sequence[ExperimentResult], cls: Type[T]) -> list[T]:
    """Rebuild typed rows from one or more results' row dicts."""
    return [cls(**row) for result in results for row in result.rows]

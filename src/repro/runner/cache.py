"""JSON result artifacts under ``results/cache/``.

A cache entry is one :class:`~repro.runner.result.ExperimentResult`
wrapped with its key — ``(scenario content hash, derived seed, package
version, result schema)`` — so any of

* a parameter change (new content hash),
* a different ``--seed`` (new derived seed),
* a simulator version bump, or
* a result-contract schema bump

forces a recompute.  Entries are written atomically (temp file +
``os.replace``) and validated on read: unparsable, truncated, or
key-mismatched files are treated as misses, never as errors.

Layout: one file per entry, named after the (sanitized) scenario name for
humans plus the key for correctness::

    results/cache/fig9/Geo-4M.1f2e3d4c5b6a.s2913441678.v1.0.0.json
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any

from repro.runner.result import RESULT_SCHEMA, ExperimentResult
from repro.runner.scenario import Scenario

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"

_SEGMENT_RE = re.compile(r"[^A-Za-z0-9._-]+")


def repro_version() -> str:
    """The simulator version stamped into keys and provenance."""
    from repro import __version__

    return __version__


def _sanitize(segment: str) -> str:
    return _SEGMENT_RE.sub("-", segment) or "unit"


class ResultCache:
    """Content-addressed result store for scenario units."""

    def __init__(self, root: str | Path | None = None,
                 version: str | None = None):
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.version = version if version is not None else repro_version()

    # ------------------------------------------------------------------
    def key(self, scenario: Scenario, seed: int | None) -> dict[str, Any]:
        """The identity a stored entry must match to be a hit."""
        return {
            "scenario_hash": scenario.content_hash(),
            "seed": seed,
            "version": self.version,
            "schema": RESULT_SCHEMA,
        }

    def path(self, scenario: Scenario, seed: int | None) -> Path:
        parts = [_sanitize(p) for p in scenario.name.split("/") if p]
        leaf = (f"{parts[-1]}.{scenario.content_hash()[:12]}"
                f".s{'x' if seed is None else seed}.v{self.version}.json")
        return self.root.joinpath(*parts[:-1], leaf)

    # ------------------------------------------------------------------
    def load(self, scenario: Scenario,
             seed: int | None) -> ExperimentResult | None:
        """The stored result, or ``None`` on any miss or damage."""
        path = self.path(scenario, seed)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("key") != self.key(
                scenario, seed):
            return None
        try:
            result = ExperimentResult.from_doc(doc["result"])
        except (KeyError, TypeError):
            return None
        # The cached entry may have been produced under another scenario
        # name (dedup across figures); rebind to the requesting unit.
        result.name = scenario.name
        return result

    def store(self, scenario: Scenario, seed: int | None,
              result: ExperimentResult) -> Path:
        """Atomically persist ``result`` under this scenario's key."""
        path = self.path(scenario, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"key": self.key(scenario, seed), "result": result.to_doc()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

"""Scenario execution: cache lookup, dedup, and process-pool fan-out.

:func:`run_scenarios` takes a flat list of :class:`~repro.runner.Scenario`
units and returns a :class:`RunReport` with one
:class:`~repro.runner.result.ExperimentResult` per unit, in input order.
For each unit it

1. derives the unit seed from the root ``--seed`` and the scenario's
   seed key (order-independent, see :mod:`repro.runner.scenario`),
2. dedups identical ``(content hash, seed)`` work within the run (figures
   often share grid points),
3. consults the :class:`~repro.runner.cache.ResultCache` unless caching is
   off or the capture mode needs live data (``--trace`` /
   ``--check-invariants`` must re-observe the run),
4. executes the misses — inline for ``jobs=1``, on a
   :class:`~concurrent.futures.ProcessPoolExecutor` otherwise.

Every execution happens under a *local*, context-scoped observer
(:func:`repro.obs.observed`); the worker ships back a deterministic
:func:`repro.obs.snapshot` that the parent merges.  Because each unit owns
its observer and its seed, rows and snapshots are bit-identical for any
``--jobs`` value — the report's per-unit wall clock and hit/miss status
(:class:`UnitOutcome`) are the only nondeterministic outputs.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import merge_snapshots, observed, snapshot as obs_snapshot
from repro.runner.cache import ResultCache, repro_version
from repro.runner.result import ExperimentResult, Provenance
from repro.runner.scenario import Scenario


@dataclass(frozen=True)
class Capture:
    """Which observability payloads units must produce and ship back.

    ``timeline`` samples the metric registry on a sim-time grid
    (``sample_interval`` sim seconds; ``None`` auto-scales), ``profile``
    attributes wall time per process site, and ``flightrec`` (a directory
    path) arms a flight recorder that dumps a postmortem bundle there when
    a unit's compute raises or accumulates incidents.
    """

    trace: bool = False
    metrics: bool = False
    invariants: bool = False
    timeline: bool = False
    sample_interval: float | None = None
    profile: bool = False
    flightrec: str | None = None

    @property
    def needs_live_run(self) -> bool:
        """Capture modes that cannot be served from the cache."""
        return (self.trace or self.invariants or self.timeline
                or self.profile or self.flightrec is not None)


@dataclass(frozen=True)
class RunOptions:
    """How to execute a batch of scenarios."""

    jobs: int = 1
    seed: int = 0
    cache: bool = True
    cache_dir: str | Path | None = None
    capture: Capture = field(default_factory=Capture)
    #: Optional ``(done, total, status, name)`` callback, invoked in
    #: completion order as units finish (hits and dedups included).  Purely
    #: cosmetic — results stay input-ordered regardless.
    progress: Any = None


@dataclass
class UnitOutcome:
    """Per-unit execution accounting (the ``--bench-out`` rows)."""

    name: str
    scenario_hash: str
    seed: int | None
    status: str  # "miss" (computed), "hit" (cache), "dedup" (shared in-run)
    wall_s: float
    sim_time_s: float | None


@dataclass
class RunReport:
    """Everything one :func:`run_scenarios` call produced."""

    results: list[ExperimentResult]
    outcomes: list[UnitOutcome]
    root_seed: int
    sim_version: str

    def by_name(self, name: str) -> ExperimentResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    @property
    def hit_rate(self) -> float:
        """Fraction of units served without recomputing (hit or dedup)."""
        if not self.outcomes:
            return 0.0
        served = sum(1 for o in self.outcomes if o.status != "miss")
        return served / len(self.outcomes)

    def merged_obs(self) -> dict[str, Any]:
        """One merged observability snapshot over every unit."""
        return merge_snapshots([r.obs for r in self.results if r.obs])

    def trace_events(self) -> list[dict[str, Any]]:
        """All units' Chrome trace events, rebased onto disjoint pids."""
        from repro.obs import merge_trace_events

        return merge_trace_events(
            [r.obs.get("trace_events", []) for r in self.results if r.obs])

    def merged_timeline(self) -> dict[str, Any]:
        """All units' timeline docs, segment-concatenated in unit order."""
        from repro.obs import merge_timelines

        return merge_timelines(
            [(r.obs or {}).get("timeline") for r in self.results])

    def merged_profile(self) -> dict[str, Any]:
        """All units' wall-clock profiles, summed by process site."""
        from repro.obs import merge_profiles

        return merge_profiles(
            [(r.obs or {}).get("profile") for r in self.results])

    def merged_invariants_report(self) -> str | None:
        """Aggregated invariant-checker summary, if any unit was checked."""
        from repro.analysis import InvariantChecker

        stats: dict[str, int] = {}
        checked = False
        for result in self.results:
            inv = (result.obs or {}).get("invariants")
            if not inv:
                continue
            checked = True
            for key, value in inv["stats"].items():
                stats[key] = stats.get(key, 0) + value
        if not checked:
            return None
        checker = InvariantChecker()
        checker.stats.update(stats)
        return checker.report()

    def bench_doc(self, jobs: int | None = None,
                  groups: list[tuple[str, int, int]] | None = None
                  ) -> dict[str, Any]:
        """The ``BENCH_experiments.json`` document.

        ``groups`` — optional ``(name, first, one_past_last)`` slices of the
        outcome list (the CLI passes its experiment sections) — adds a
        per-group totals block with each group's slowest units, so a slow
        ``all`` run points at an experiment without spelunking the flat
        unit list.
        """
        hits = sum(1 for o in self.outcomes if o.status == "hit")
        dedups = sum(1 for o in self.outcomes if o.status == "dedup")
        misses = sum(1 for o in self.outcomes if o.status == "miss")
        doc = {
            "schema": 1,
            "sim_version": self.sim_version,
            "root_seed": self.root_seed,
            "jobs": jobs,
            "units": [
                {"name": o.name, "scenario": o.scenario_hash[:12],
                 "seed": o.seed, "status": o.status,
                 "wall_s": round(o.wall_s, 6), "sim_time_s": o.sim_time_s}
                for o in self.outcomes],
            "totals": {
                "units": len(self.outcomes),
                "hits": hits, "dedups": dedups, "misses": misses,
                "hit_rate": self.hit_rate,
                "wall_s": round(sum(o.wall_s for o in self.outcomes), 6),
                "sim_time_s": sum(o.sim_time_s or 0.0
                                  for o in self.outcomes),
            },
        }
        if groups is not None:
            doc["groups"] = {
                name: self._group_doc(self.outcomes[lo:hi])
                for name, lo, hi in groups}
        profile = self.merged_profile()
        if profile["sites"]:
            from repro.obs import profile_bench_section

            doc["profile"] = profile_bench_section(profile)
        return doc

    @staticmethod
    def _group_doc(outcomes: list[UnitOutcome],
                   n_slowest: int = 3) -> dict[str, Any]:
        slowest = sorted(outcomes, key=lambda o: (-o.wall_s, o.name))
        return {
            "units": len(outcomes),
            "misses": sum(1 for o in outcomes if o.status == "miss"),
            "wall_s": round(sum(o.wall_s for o in outcomes), 6),
            "sim_time_s": sum(o.sim_time_s or 0.0 for o in outcomes),
            "slowest": [{"name": o.name, "status": o.status,
                         "wall_s": round(o.wall_s, 6)}
                        for o in slowest[:n_slowest]],
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _np_safe(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"payload value {value!r} is not JSON-serializable")


def _jsonable(payload: Any) -> Any:
    """Canonicalize a compute payload to plain JSON types, so cached,
    pooled and inline executions yield literally identical rows."""
    return json.loads(json.dumps(payload, default=_np_safe))


def execute_unit(scenario: Scenario, seed: int | None, capture: Capture,
                 root_seed: int | None, version: str) -> ExperimentResult:
    """Run one scenario under its own context-scoped observer.

    Module-level (not a closure) so a :class:`ProcessPoolExecutor` can
    pickle it into workers; also the inline path for ``jobs=1``.
    """
    fn = scenario.resolve()
    kwargs = dict(scenario.params)
    if scenario.seeded:
        kwargs["seed"] = seed
    with observed() as obs:
        checker = None
        if capture.invariants:
            from repro.analysis import attach_invariant_checker

            checker = attach_invariant_checker(obs)
        if capture.timeline:
            from repro.obs import attach_timeline

            attach_timeline(obs, capture.sample_interval)
        if capture.profile:
            from repro.obs import attach_profiler

            attach_profiler(obs)
        recorder = None
        if capture.flightrec is not None:
            from repro.obs import attach_flightrec

            recorder = attach_flightrec(obs)
            recorder.provenance = {
                "scenario": scenario.name,
                "scenario_hash": scenario.content_hash(),
                "fn": scenario.fn,
                "seed": seed,
                "root_seed": root_seed if scenario.seeded else None,
                "sim_version": version,
            }
        try:
            payload = fn(**kwargs)
        except Exception as exc:
            if recorder is not None:
                recorder.incident("compute_exception", error=repr(exc))
                recorder.dump_to(capture.flightrec, scenario.name, obs=obs)
            raise
        if recorder is not None and recorder.incidents:
            # Non-fatal incidents (e.g. an abandoned repair ladder) still
            # deserve a postmortem bundle.
            recorder.dump_to(capture.flightrec, scenario.name, obs=obs)
        snap = obs_snapshot(obs, include_trace=capture.trace)
        if checker is not None:
            snap["invariants"] = {"stats": dict(checker.stats),
                                  "report": checker.report()}
    payload = _jsonable(payload)
    if not isinstance(payload, dict) or "rows" not in payload:
        raise TypeError(
            f"scenario {scenario.name!r}: compute function {scenario.fn!r} "
            "must return a mapping with a 'rows' list")
    return ExperimentResult(
        name=scenario.name,
        rows=payload["rows"],
        meta=payload.get("meta", {}),
        provenance=Provenance(
            fn=scenario.fn,
            params=_jsonable(scenario.params),
            scenario_hash=scenario.content_hash(),
            seed=seed,
            root_seed=root_seed if scenario.seeded else None,
            sim_version=version,
        ),
        obs=snap,
    )


def _timed_execute(scenario: Scenario, seed: int | None, capture: Capture,
                   root_seed: int | None,
                   version: str) -> tuple[ExperimentResult, float]:
    t0 = time.perf_counter()
    result = execute_unit(scenario, seed, capture, root_seed, version)
    return result, time.perf_counter() - t0


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_scenarios(scenarios: list[Scenario],
                  options: RunOptions | None = None) -> RunReport:
    """Execute every scenario; results come back in input order."""
    options = options or RunOptions()
    capture = options.capture
    version = repro_version()
    cache = None
    if options.cache:
        cache = ResultCache(options.cache_dir, version=version)

    n = len(scenarios)
    seeds: list[int | None] = [s.derive_seed(options.seed) for s in scenarios]
    results: list[ExperimentResult | None] = [None] * n
    outcomes: list[UnitOutcome | None] = [None] * n
    first_of: dict[tuple[str, int | None], int] = {}
    dedups: list[tuple[int, int]] = []  # (unit index, index it shares)
    to_run: list[int] = []

    done = 0

    def note(status: str, name: str) -> None:
        nonlocal done
        done += 1
        if options.progress is not None:
            options.progress(done, n, status, name)

    for i, (unit, seed) in enumerate(zip(scenarios, seeds)):
        key = (unit.content_hash(), seed)
        prior = first_of.get(key)
        if prior is not None:
            dedups.append((i, prior))
            continue
        first_of[key] = i
        if cache is not None and not capture.needs_live_run:
            t0 = time.perf_counter()
            hit = cache.load(unit, seed)
            if hit is not None:
                results[i] = hit
                outcomes[i] = UnitOutcome(
                    name=unit.name, scenario_hash=key[0], seed=seed,
                    status="hit", wall_s=time.perf_counter() - t0,
                    sim_time_s=(hit.obs or {}).get("sim_time_s"))
                note("hit", unit.name)
                continue
        to_run.append(i)

    #: Per-run payloads never stored in the cache: bulky (trace events),
    #: only meaningful for the run that asked (timeline), or outright
    #: nondeterministic (profile).  A cached row must stay byte-identical
    #: to a freshly computed plain row.
    _uncacheable = ("trace_events", "timeline", "profile")

    def record_miss(i: int, result: ExperimentResult, wall: float) -> None:
        results[i] = result
        outcomes[i] = UnitOutcome(
            name=result.name, scenario_hash=result.provenance.scenario_hash,
            seed=seeds[i], status="miss", wall_s=wall,
            sim_time_s=(result.obs or {}).get("sim_time_s"))
        if cache is not None:
            # Strip bulky per-run payloads; keep the deterministic summary
            # so warm hits still report sim-time and merge into --metrics.
            stored = result
            if result.obs and any(k in result.obs for k in _uncacheable):
                slim = {k: v for k, v in result.obs.items()
                        if k not in _uncacheable}
                stored = replace(result, obs=slim)
            cache.store(scenarios[i], seeds[i], stored)
        note("miss", result.name)

    if len(to_run) > 1 and options.jobs > 1:
        workers = min(options.jobs, len(to_run))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_timed_execute, scenarios[i], seeds[i],
                            capture, options.seed, version): i
                for i in to_run}
            for future in as_completed(futures):
                result, wall = future.result()
                record_miss(futures[future], result, wall)
    else:
        for i in to_run:
            result, wall = _timed_execute(scenarios[i], seeds[i], capture,
                                          options.seed, version)
            record_miss(i, result, wall)

    for i, prior in dedups:
        shared = results[prior]
        assert shared is not None
        results[i] = replace(shared, name=scenarios[i].name)
        outcomes[i] = UnitOutcome(
            name=scenarios[i].name, scenario_hash=shared.provenance.scenario_hash,
            seed=seeds[i], status="dedup", wall_s=0.0,
            sim_time_s=(shared.obs or {}).get("sim_time_s"))
        note("dedup", scenarios[i].name)

    return RunReport(results=results, outcomes=outcomes,  # type: ignore[arg-type]
                     root_seed=options.seed, sim_version=version)

"""The declarative unit of experiment work: a :class:`Scenario`.

A scenario names a pure compute function (by dotted ``module:function``
path, so it pickles into worker processes) plus JSON-safe keyword
parameters.  Its identity is the :meth:`Scenario.content_hash` of that
pair — parameter *values*, not argument order — which keys both the result
cache and the per-unit seed derivation:

* two scenarios with the same function and parameters are the same work,
  wherever they appear in a run;
* a scenario's seed is derived from ``(root seed, seed key)`` through
  :class:`numpy.random.SeedSequence` spawn keys, so adding, removing or
  reordering scenarios never perturbs another scenario's random draws.

The seed key defaults to the content hash.  Scenarios that form one
comparison grid — e.g. every scheme of Figure 9, which must sample the
*same* workload to be comparable — set a shared ``seed_group`` instead:
all units in the group draw the same seed, and because the group id does
not mention the scheme list, adding a scheme changes nobody's draws.

Seed-less scenarios (``seeded=False``) model deterministic analytic
computations (Table 1, Figure 2, ...): their compute function takes no
``seed`` argument and their cache entry is seed-independent.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """One schedulable unit: ``fn(**params[, seed=...]) -> payload``.

    ``fn`` is a dotted ``"package.module:function"`` path; the function must
    return a JSON-safe mapping with a ``"rows"`` list (the typed result
    rows) and optionally ``"meta"`` (experiment-level scalars).
    """

    name: str
    fn: str
    params: dict[str, Any] = field(default_factory=dict)
    seeded: bool = True
    seed_group: str | None = None

    def content_hash(self) -> str:
        """Hex digest identifying this work item (name excluded)."""
        doc = {"fn": self.fn, "params": self.params, "seeded": self.seeded}
        return hashlib.sha256(canonical_json(doc).encode()).hexdigest()

    def seed_key(self) -> str:
        """What the per-unit seed is derived from: the shared group id for
        grid scenarios, this unit's own content hash otherwise."""
        if self.seed_group is not None:
            return hashlib.sha256(self.seed_group.encode()).hexdigest()
        return self.content_hash()

    def derive_seed(self, root_seed: int) -> int | None:
        """The per-unit seed for ``root_seed``, or ``None`` if seedless.

        Derivation feeds :meth:`seed_key` into a
        :class:`~numpy.random.SeedSequence` spawn key, so the result
        depends only on (root seed, seed key) — never on how many other
        scenarios run alongside.
        """
        if not self.seeded:
            return None
        digest = int(self.seed_key()[:16], 16)
        ss = np.random.SeedSequence(
            root_seed,
            spawn_key=(digest & 0xFFFFFFFF, (digest >> 32) & 0xFFFFFFFF))
        return int(ss.generate_state(1, np.uint32)[0])

    def resolve(self) -> Callable[..., Any]:
        """Import and return the compute function."""
        module_name, _, fn_name = self.fn.partition(":")
        if not fn_name:
            raise ValueError(
                f"scenario fn {self.fn!r} is not a 'module:function' path")
        module = importlib.import_module(module_name)
        fn = module
        for part in fn_name.split("."):
            fn = getattr(fn, part)
        return fn

    def prefixed(self, prefix: str) -> "Scenario":
        """A copy named ``prefix/name`` (identity/hash unchanged)."""
        return replace(self, name=f"{prefix}/{self.name}")


def scenario(fn: Callable[..., Any] | str, name: str | None = None,
             seeded: bool = True, seed_group: str | None = None,
             **params: Any) -> Scenario:
    """Build a :class:`Scenario` from a module-level callable (or dotted
    path) and its keyword parameters."""
    if callable(fn):
        path = f"{fn.__module__}:{fn.__qualname__}"
        default_name = fn.__name__
    else:
        path = fn
        default_name = path.rpartition(":")[2]
    return Scenario(name=name or default_name, fn=path, params=dict(params),
                    seeded=seeded, seed_group=seed_group)

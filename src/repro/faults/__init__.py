"""Fault injection for the RCStor simulation.

Two halves:

* :class:`FaultPlan` / :class:`FaultEvent` — a deterministic, JSON-safe
  fault *schedule* (disk/node crashes, transient slowdowns, stragglers,
  latent corruption) plus the repair-timeout policy.  Stochastic
  constructors take explicit seeds, so schedules are bit-reproducible
  across ``--jobs`` fan-out and result-cache hits.
* :class:`FaultInjector` — replays a plan against one measurement's disks
  and NICs, fires progress-triggered events (second failure at 50% of a
  recovery), and notifies the failure-aware recovery engine of crashes.

Measurement entry points (:meth:`repro.cluster.RCStor.run_recovery`,
:meth:`~repro.cluster.RCStor.measure_degraded_reads`, ...) accept a plan
via their ``faults`` parameter; an empty plan is equivalent to ``None``
and leaves every simulated number bit-identical.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import KINDS, FaultEvent, FaultPlan

__all__ = [
    "KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]

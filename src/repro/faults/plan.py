"""Deterministic fault schedules: :class:`FaultEvent` and :class:`FaultPlan`.

A fault plan is *data*, not behaviour: an ordered tuple of events plus the
repair-path timeout policy.  Plans round-trip through JSON (so they travel
as scenario parameters, CLI files, and cache keys) and every stochastic
constructor takes an explicit seed, so the schedule a plan produces is a
pure function of its arguments — bit-reproducible across ``--jobs`` fan-out
and cache hits.

Event taxonomy (see DESIGN.md "Fault model"):

``disk_crash``
    The disk stops serving at ``at``; in-flight and later I/O returns
    ``IO_FAILED``.
``node_crash``
    Every disk of the node crashes at ``at``.
``disk_slow`` / ``nic_slow``
    Service times multiply by ``factor`` for ``duration`` seconds
    (``duration=None`` makes a permanent straggler).
``tor_slow``
    A rack's ToR uplink degrades by ``factor`` (congestion, a flapping
    optic): every cross-rack transfer touching that rack stretches.
    Needs a tiered fabric (``n_racks > 1``).
``corrupt``
    The next ``count`` reads on the disk surface latent corruption
    (``IO_CORRUPT``) instead of data.
``latent_error``
    ``count`` *hidden* sector errors land on the disk.  Like ``corrupt``
    they poison the next reads — but the injector also remembers them as
    undiscovered, so a later ``scrub`` event can find and repair them
    before any read trips over them (the durability model's
    scrub-vs-repair-read race; see DESIGN.md "Durability model").
``scrub``
    A verification pass over the disk: every latent error still hidden on
    it (injected by ``latent_error`` and not yet consumed by a read) is
    surfaced and repaired in place, cancelling its pending ``IO_CORRUPT``.

``at_progress`` events (exactly one of ``at`` / ``at_progress`` must be
set) fire when a recovery run crosses the given completed-weight fraction —
the "second failure at 50% progress" scenario — rather than at a wall sim
time the caller cannot know in advance.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

KINDS = frozenset(
    {"disk_crash", "node_crash", "disk_slow", "nic_slow", "tor_slow",
     "corrupt", "latent_error", "scrub"})

#: Kinds targeting a disk (``disk`` required), a node (``node`` required),
#: or a rack's switch (``rack`` required).
_DISK_KINDS = frozenset({"disk_crash", "disk_slow", "corrupt",
                         "latent_error", "scrub"})
_NODE_KINDS = frozenset({"node_crash", "nic_slow"})
_RACK_KINDS = frozenset({"tor_slow"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: str
    at: float | None = None
    at_progress: float | None = None
    disk: int | None = None
    node: int | None = None
    rack: int | None = None
    factor: float = 1.0
    duration: float | None = None
    count: int = 1

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.at is None) == (self.at_progress is None):
            raise ValueError(
                "exactly one of at / at_progress must be set "
                f"({self.kind}: at={self.at}, at_progress={self.at_progress})")
        if self.at is not None and self.at < 0:
            raise ValueError(f"negative fault time {self.at}")
        if self.at_progress is not None \
                and not 0.0 <= self.at_progress <= 1.0:
            raise ValueError(f"at_progress {self.at_progress} not in [0, 1]")
        if self.kind in _DISK_KINDS and self.disk is None:
            raise ValueError(f"{self.kind} needs a disk")
        if self.kind in _NODE_KINDS and self.node is None:
            raise ValueError(f"{self.kind} needs a node")
        if self.kind in _RACK_KINDS and self.rack is None:
            raise ValueError(f"{self.kind} needs a rack")
        if self.factor < 1.0:
            raise ValueError(f"slow-factor {self.factor} must be >= 1")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration {self.duration} must be positive")
        if self.count < 1:
            raise ValueError(f"count {self.count} must be >= 1")

    def to_doc(self) -> dict[str, Any]:
        """JSON-safe dict, defaults omitted for stable hashing."""
        doc = {k: v for k, v in asdict(self).items() if v is not None}
        if self.factor == 1.0:
            doc.pop("factor", None)
        if self.count == 1:
            doc.pop("count", None)
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "FaultEvent":
        return cls(**doc)


def _sort_key(ev: FaultEvent) -> tuple:
    # Timed events first (by time), then progress events (by fraction);
    # ties break on the event's canonical doc so order is deterministic.
    if ev.at is not None:
        return (0, ev.at, 0.0, json.dumps(ev.to_doc(), sort_keys=True))
    return (1, 0.0, ev.at_progress, json.dumps(ev.to_doc(), sort_keys=True))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered fault schedule plus the repair-timeout policy.

    ``helper_timeout`` (seconds, ``None`` = disarmed) is how long a
    failure-aware repair path waits on its helper reads before cancelling
    the outstanding requests and hedging against a rotated helper set.  An
    empty plan (no events, no timeout) is falsy and the simulator treats
    it exactly like no plan at all — fault hooks are zero-cost when unused.
    """

    events: tuple[FaultEvent, ...] = ()
    helper_timeout: float | None = None

    def __post_init__(self):
        ordered = tuple(sorted(self.events, key=_sort_key))
        object.__setattr__(self, "events", ordered)
        if self.helper_timeout is not None and self.helper_timeout <= 0:
            raise ValueError("helper_timeout must be positive seconds")

    def __bool__(self) -> bool:
        return bool(self.events) or self.helper_timeout is not None

    @property
    def timed_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.at is not None)

    @property
    def progress_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.at_progress is not None)

    def with_timeout(self, helper_timeout: float | None) -> "FaultPlan":
        """A copy with the repair-timeout policy replaced."""
        return replace(self, helper_timeout=helper_timeout)

    def extended(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """A copy with extra events merged into the schedule."""
        return replace(self, events=self.events + tuple(events))

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"events": [e.to_doc() for e in self.events]}
        if self.helper_timeout is not None:
            doc["helper_timeout"] = self.helper_timeout
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any] | None) -> "FaultPlan":
        if not doc:
            return cls()
        return cls(events=tuple(FaultEvent.from_doc(e)
                                for e in doc.get("events", ())),
                   helper_timeout=doc.get("helper_timeout"))

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_doc(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Scheduled constructors
    # ------------------------------------------------------------------
    @classmethod
    def stragglers(cls, disks: Sequence[int], factor: float, at: float = 0.0,
                   duration: float | None = None,
                   helper_timeout: float | None = None) -> "FaultPlan":
        """Permanent (or windowed) slowdown of the given disks."""
        if factor <= 1.0:
            return cls(helper_timeout=helper_timeout)
        events = tuple(FaultEvent("disk_slow", at=at, disk=int(d),
                                  factor=factor, duration=duration)
                       for d in disks)
        return cls(events=events, helper_timeout=helper_timeout)

    @classmethod
    def second_failure(cls, disk: int, at_progress: float = 0.5,
                       helper_timeout: float | None = None) -> "FaultPlan":
        """Crash ``disk`` when a recovery run reaches ``at_progress``."""
        return cls(events=(FaultEvent("disk_crash", at_progress=at_progress,
                                      disk=int(disk)),),
                   helper_timeout=helper_timeout)

    # ------------------------------------------------------------------
    # Stochastic generators (seeded, bit-reproducible)
    # ------------------------------------------------------------------
    @classmethod
    def random_stragglers(cls, n_disks: int, fraction: float, factor: float,
                          seed: int, at: float = 0.0,
                          helper_timeout: float | None = None) -> "FaultPlan":
        """Slow a seed-chosen fraction of disks by ``factor`` forever."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        n_slow = max(1, int(round(fraction * n_disks)))
        rng = np.random.default_rng(seed)
        disks = sorted(int(d) for d in
                       rng.choice(n_disks, size=n_slow, replace=False))
        return cls.stragglers(disks, factor, at=at,
                              helper_timeout=helper_timeout)

    @classmethod
    def exponential_crashes(cls, rate: float, horizon: float, n_disks: int,
                            seed: int, max_failures: int | None = None
                            ) -> "FaultPlan":
        """Disk crashes with exponential inter-arrival times.

        ``rate`` is crashes per sim second; arrivals past ``horizon`` are
        dropped.  Each crash picks a distinct disk uniformly at random.
        """
        if rate <= 0 or horizon <= 0:
            raise ValueError("rate and horizon must be positive")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        alive = list(range(n_disks))
        t = 0.0
        while alive:
            t += float(rng.exponential(1.0 / rate))
            if t > horizon:
                break
            victim = alive.pop(int(rng.integers(len(alive))))
            events.append(FaultEvent("disk_crash", at=t, disk=victim))
            if max_failures is not None and len(events) >= max_failures:
                break
        return cls(events=tuple(events))

    @classmethod
    def correlated_node_burst(cls, node: int, disks_per_node: int,
                              seed: int, at: float, spread: float = 1.0,
                              kind: str = "disk_slow", factor: float = 4.0,
                              duration: float | None = 10.0) -> "FaultPlan":
        """A same-node burst: every disk of ``node`` faults within
        ``spread`` seconds of ``at`` (the Facebook-study correlated mode).
        """
        if kind not in ("disk_slow", "disk_crash"):
            raise ValueError("burst kind must be disk_slow or disk_crash")
        rng = np.random.default_rng(seed)
        first = node * disks_per_node
        events = []
        for disk in range(first, first + disks_per_node):
            jitter = float(rng.uniform(0.0, spread))
            if kind == "disk_crash":
                events.append(FaultEvent("disk_crash", at=at + jitter,
                                         disk=disk))
            else:
                events.append(FaultEvent("disk_slow", at=at + jitter,
                                         disk=disk, factor=factor,
                                         duration=duration))
        return cls(events=tuple(events))

    # ------------------------------------------------------------------
    # Rack-scoped constructors (need a tiered fabric, n_racks > 1)
    # ------------------------------------------------------------------
    @classmethod
    def tor_slowdown(cls, rack: int, factor: float, at: float = 0.0,
                     duration: float | None = None,
                     helper_timeout: float | None = None) -> "FaultPlan":
        """Degrade one rack's ToR uplink by ``factor`` (windowed or
        permanent): every cross-rack transfer in or out of the rack
        stretches, while intra-rack traffic is untouched."""
        if factor <= 1.0:
            return cls(helper_timeout=helper_timeout)
        return cls(events=(FaultEvent("tor_slow", at=at, rack=int(rack),
                                      factor=factor, duration=duration),),
                   helper_timeout=helper_timeout)

    @classmethod
    def rack_burst(cls, nodes: Sequence[int], disks_per_node: int,
                   seed: int, at: float, spread: float = 1.0,
                   kind: str = "disk_slow", factor: float = 4.0,
                   duration: float | None = 10.0) -> "FaultPlan":
        """A whole-rack burst: every disk of every node in ``nodes``
        (typically ``config.nodes_in_rack(rack)``) faults within ``spread``
        seconds of ``at`` — the correlated mode a shared power or switch
        domain produces.  Composes :meth:`correlated_node_burst` per node
        with derived per-node seeds, so a rack burst is bit-identical to
        its per-node bursts replayed together."""
        plan = cls()
        for i, node in enumerate(nodes):
            plan = plan.extended(cls.correlated_node_burst(
                int(node), disks_per_node, seed + i, at, spread=spread,
                kind=kind, factor=factor, duration=duration).events)
        return plan

    # ------------------------------------------------------------------
    # Latent-error / scrub constructors (the durability model's inputs)
    # ------------------------------------------------------------------
    @classmethod
    def latent_errors(cls, rate: float, horizon: float, n_disks: int,
                      seed: int) -> "FaultPlan":
        """Hidden sector errors with exponential inter-arrival times.

        ``rate`` is arrivals per sim second across the whole fleet;
        arrivals past ``horizon`` are dropped.  Each error lands on a
        uniformly random disk and stays hidden until a read trips over it
        or a ``scrub`` event repairs it.
        """
        if rate <= 0 or horizon <= 0:
            raise ValueError("rate and horizon must be positive")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t > horizon:
                break
            disk = int(rng.integers(n_disks))
            events.append(FaultEvent("latent_error", at=t, disk=disk))
        return cls(events=tuple(events))

    @classmethod
    def scrub_schedule(cls, n_disks: int, interval: float, horizon: float,
                       seed: int = 0) -> "FaultPlan":
        """Periodic per-disk scrub passes with seeded phase offsets.

        Every disk is scrubbed each ``interval`` seconds starting from a
        uniformly random phase in ``[0, interval)`` — staggered so the
        fleet's scrub load is flat, not a synchronised thundering herd.
        """
        if interval <= 0 or horizon <= 0:
            raise ValueError("interval and horizon must be positive")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for disk in range(n_disks):
            t = float(rng.uniform(0.0, interval))
            while t <= horizon:
                events.append(FaultEvent("scrub", at=t, disk=disk))
                t += interval
        return cls(events=tuple(events))

"""The fault injector: replays a :class:`~repro.faults.FaultPlan` against
a live simulation.

The injector owns one replay process for the plan's *timed* events and
fires *progress* events when the recovery engine reports completed-weight
fractions (:meth:`FaultInjector.notify_progress`).  Applying an event
mutates the target device's fault state (``failed`` flag, ``speed_factor``
multiplier, ``pending_corrupt`` budget) — the devices themselves stay
fault-agnostic beyond those attributes, so the unfaulted hot path costs
nothing.

Disk crashes additionally notify subscribers (the failure-aware recovery
engine registers one to escalate affected placement groups mid-run) and
every applied event lands in the observer as a ``faults.injected`` counter
and a zero-length span on the runtime's ``faults`` track.  When the
observer carries second-generation telemetry the injector feeds it too —
duck-typed (``getattr``), so this layer never imports ``repro.obs``: each
applied event drops a ``fault:<kind>`` mark on the timeline segment, and
the flight recorder's fault-state summary is refreshed so a postmortem
bundle shows which disks were down when things went wrong.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import FaultEvent, FaultPlan
from repro.sim import Environment


class FaultInjector:
    """Replays a fault plan against one measurement's devices."""

    def __init__(self, env: Environment, disks: list, nics: list,
                 plan: FaultPlan, obs=None, links: dict | None = None):
        self.env = env
        self.disks = disks
        self.nics = nics
        #: Name -> Link registry (a Fabric's ``links``): how rack-scoped
        #: events find their target, and the preferred route for nic_slow.
        self.links = links if links is not None else {}
        self.plan = plan
        self.helper_timeout = plan.helper_timeout
        self.failed_disks: set[int] = set()
        self.injected: list[FaultEvent] = []
        #: disk id -> latent errors injected but not yet scrubbed away.
        #: Reads may consume them first (surfacing IO_CORRUPT); a scrub
        #: clears whatever is still pending, so the two discovery paths
        #: race exactly as the durability model describes.
        self.latent_errors: dict[int, int] = {}
        #: Total latent errors a scrub repaired before any read hit them.
        self.scrubbed_errors = 0
        self._active_slowdowns: dict[int, list[float]] = {}
        self._on_disk_failure: list[Callable[[int], None]] = []
        self._progress_pending = list(plan.progress_events)
        self._counter = (obs.metrics.counter("faults.injected")
                         if obs is not None else None)
        self._timeline = getattr(obs, "timeline", None) \
            if obs is not None else None
        self._flightrec = getattr(obs, "flightrec", None) \
            if obs is not None else None
        #: Optional ``(name, start, end, **args)`` span recorder, installed
        #: by the runtime that owns this injector.
        self.span_cb: Callable | None = None
        if plan.timed_events:
            env.process(self._replay())

    # ------------------------------------------------------------------
    @property
    def has_progress_events(self) -> bool:
        return bool(self._progress_pending)

    def on_disk_failure(self, callback: Callable[[int], None]) -> None:
        """Subscribe to disk-crash events (called with the disk id)."""
        self._on_disk_failure.append(callback)

    def notify_progress(self, fraction: float) -> None:
        """Fire progress-triggered events crossed by ``fraction``."""
        while self._progress_pending \
                and self._progress_pending[0].at_progress <= fraction:
            self._apply(self._progress_pending.pop(0))

    # ------------------------------------------------------------------
    def _replay(self):
        for event in self.plan.timed_events:
            if event.at > self.env.now:
                yield self.env.timeout(event.at - self.env.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "disk_crash":
            self._crash_disk(event.disk)
        elif kind == "node_crash":
            per_node = len(self.disks) // len(self.nics)
            first = event.node * per_node
            for disk_id in range(first, first + per_node):
                self._crash_disk(disk_id)
        elif kind == "disk_slow":
            self._slow(self.disks[event.disk], event.factor, event.duration)
        elif kind == "nic_slow":
            nic = self.links.get(f"nic-{event.node}")
            self._slow(nic if nic is not None else self.nics[event.node],
                       event.factor, event.duration)
        elif kind == "tor_slow":
            link = self.links.get(f"tor-{event.rack}")
            if link is None:
                raise ValueError(
                    f"tor_slow targets rack {event.rack} but the fabric "
                    "has no ToR links (single-rack cluster?)")
            self._slow(link, event.factor, event.duration)
        elif kind == "corrupt":
            self.disks[event.disk].pending_corrupt += event.count
        elif kind == "latent_error":
            self.disks[event.disk].pending_corrupt += event.count
            self.latent_errors[event.disk] = \
                self.latent_errors.get(event.disk, 0) + event.count
        elif kind == "scrub":
            disk = self.disks[event.disk]
            hidden = self.latent_errors.pop(event.disk, 0)
            cleared = min(hidden, disk.pending_corrupt)
            disk.pending_corrupt -= cleared
            self.scrubbed_errors += cleared
        self.injected.append(event)
        if self._counter is not None:
            self._counter.inc()
        if self.span_cb is not None:
            now = self.env.now
            self.span_cb(f"fault:{kind}", now, now, **event.to_doc())
        if self._timeline is not None:
            self._timeline.mark(self.env, f"fault:{kind}", **event.to_doc())
        if self._flightrec is not None:
            self._flightrec.note_fault_state({
                "injected": len(self.injected),
                "failed_disks": sorted(self.failed_disks),
            })

    def _crash_disk(self, disk_id: int) -> None:
        if disk_id in self.failed_disks:
            return
        self.disks[disk_id].failed = True
        self.failed_disks.add(disk_id)
        for callback in self._on_disk_failure:
            callback(disk_id)

    def _slow(self, device, factor: float, duration: float | None) -> None:
        # Overlapping slowdown windows on one device must compose exactly:
        # each window registers its factor and the device speed is always
        # the product of the *currently active* factors, so restores cannot
        # drift the speed through out-of-order divides.
        if factor == 1.0:
            return
        active = self._active_slowdowns.setdefault(id(device), [])
        active.append(factor)
        self._recompute_speed(device, active)

        def restore():
            yield self.env.timeout(duration)
            active.remove(factor)
            self._recompute_speed(device, active)

        if duration is not None:
            self.env.process(restore())

    @staticmethod
    def _recompute_speed(device, active: list[float]) -> None:
        speed = 1.0
        for factor in active:
            speed *= factor
        device.speed_factor = speed

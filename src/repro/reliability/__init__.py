"""Durability modelling: MTTDL as a function of recovery speed (§2.1).

The paper motivates recovery efficiency with "efficient recovery can reduce
MTTL, increasing the durability of the system".  This package quantifies
that: a continuous-time Markov chain over failure states gives the mean
time to data loss of one placement group, fed by the erasure code's exact
fatal-failure combinatorics (non-MDS codes like LRC can die before
exhausting r failures) and by recovery times measured on the simulator.
"""

from repro.reliability.markov import (
    ReliabilityParams,
    annual_durability,
    fatal_probabilities_for_code,
    mttdl_group,
    system_mttdl,
)

__all__ = [
    "ReliabilityParams",
    "annual_durability",
    "fatal_probabilities_for_code",
    "mttdl_group",
    "system_mttdl",
]

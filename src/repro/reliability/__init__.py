"""Durability modelling: MTTDL as a function of recovery speed (§2.1).

The paper motivates recovery efficiency with "efficient recovery can reduce
MTTL, increasing the durability of the system".  This package quantifies
that twice over:

* :mod:`repro.reliability.markov` — a continuous-time Markov chain over
  failure states gives the mean time to data loss of one placement group,
  fed by the erasure code's exact fatal-failure combinatorics (non-MDS
  codes like LRC can die before exhausting r failures) and by recovery
  times measured on the simulator.
* :mod:`repro.reliability.fleet` — an event-driven Monte-Carlo fleet
  simulation (10k+ disks, multi-year) adds what the chain cannot express:
  latent sector errors raced by scrubbing against repair reads,
  correlated rack bursts and ToR outages, and a risk-aware repair queue.
  :mod:`repro.reliability.estimators` turns its trial counts into MTTDL
  and loss-probability estimates with 95% confidence intervals.
"""

from repro.reliability.estimators import (
    LossProbability,
    MttdlEstimate,
    estimate_mttdl,
    loss_probability,
)
from repro.reliability.fleet import (
    FleetParams,
    FleetSim,
    TrialResult,
    independent_pgs,
)
from repro.reliability.markov import (
    ReliabilityParams,
    annual_durability,
    fatal_probabilities_for_code,
    mds_fatal_probabilities,
    mttdl_group,
    system_mttdl,
)

__all__ = [
    "FleetParams",
    "FleetSim",
    "LossProbability",
    "MttdlEstimate",
    "ReliabilityParams",
    "TrialResult",
    "annual_durability",
    "estimate_mttdl",
    "fatal_probabilities_for_code",
    "independent_pgs",
    "loss_probability",
    "mds_fatal_probabilities",
    "mttdl_group",
    "system_mttdl",
]

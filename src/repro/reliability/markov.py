"""Markov-chain MTTDL for erasure-coded placement groups.

Model
-----
A placement group has ``n`` disks.  State ``i`` = ``i`` concurrently failed
but still-recoverable disks.  Transitions:

* failure: state ``i -> i+1`` at rate ``(n - i) * lam``; with probability
  ``q[i+1]`` the new failure pattern is *fatal* (unrecoverable) and the
  chain absorbs into data loss instead,
* repair: state ``i -> i-1`` at rate ``mu_i = 1 / repair_time(i)``.

``q`` comes from the code's exact combinatorics
(:func:`fatal_probabilities_for_code`): an MDS code has ``q[i] = 0`` for
``i <= r`` and ``q[r+1] = 1``; LRC dies earlier on some patterns.

MTTDL is the expected absorption time from state 0, obtained by solving the
first-step linear system.  System-level MTTDL divides by the number of
independent placement groups (rare-event approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class ReliabilityParams:
    """Inputs of the per-group MTTDL chain."""

    n_disks: int
    #: annualised failure rate of one disk (e.g. 0.02 = 2% AFR)
    afr: float
    #: time to repair one failed disk, in hours (from the simulator)
    repair_hours: float
    #: q[i] = P(the i-th concurrent failure is fatal), i = 1..len(q);
    #: the last entry must be 1.0 (the tolerance is exhausted there).
    #: Required — derive it from the code's combinatorics
    #: (:meth:`for_code`) or state it explicitly
    #: (:func:`mds_fatal_probabilities` for any MDS code), so a scheme
    #: with different tolerance can never silently inherit MDS-4
    #: durability.
    fatal_probabilities: Sequence[float]

    def __post_init__(self):
        if self.n_disks < 2 or self.afr <= 0 or self.repair_hours <= 0:
            raise ValueError("invalid reliability parameters")
        q = list(self.fatal_probabilities)
        if not q or abs(q[-1] - 1.0) > 1e-12:
            raise ValueError("fatal probabilities must end at 1.0")
        if any(not 0 <= x <= 1 for x in q):
            raise ValueError("fatal probabilities must be in [0, 1]")
        if len(q) > self.n_disks:
            raise ValueError("more failure states than disks")

    @property
    def failure_rate(self) -> float:
        """Per-disk failures per hour."""
        return self.afr / HOURS_PER_YEAR

    @classmethod
    def for_code(cls, code, n_disks: int, afr: float,
                 repair_hours: float) -> "ReliabilityParams":
        """Params whose fatal-pattern vector is derived from ``code``
        via its exact combinatorics (:func:`fatal_probabilities_for_code`).
        """
        return cls(n_disks=n_disks, afr=afr, repair_hours=repair_hours,
                   fatal_probabilities=tuple(
                       fatal_probabilities_for_code(code)))


def mds_fatal_probabilities(r: int) -> tuple[float, ...]:
    """The q-vector of any MDS code tolerating ``r`` failures."""
    if r < 1:
        raise ValueError("an MDS code tolerates at least one failure")
    return (0.0,) * r + (1.0,)


def fatal_probabilities_for_code(code) -> list[float]:
    """Exact q[i] for a code exposing ``decodable(erased)`` (or MDS).

    ``q[i]`` is the probability that, given a uniformly random recoverable
    set of ``i-1`` failures, one more uniformly random failure yields an
    unrecoverable set.
    """
    n, r = code.n, code.r
    if getattr(code, "is_mds", False):
        return [0.0] * r + [1.0]
    q: list[float] = []
    recoverable_prev = {frozenset()}
    memo: dict[frozenset, bool] = {}

    def decodable(candidate: frozenset) -> bool:
        """Memoised decodability check for a failure set."""
        if candidate not in memo:
            memo[candidate] = code.decodable(sorted(candidate))
        return memo[candidate]

    for i in range(1, n + 1):
        fatal = total = 0
        recoverable_now = set()
        for prev in recoverable_prev:
            for nxt in range(n):
                if nxt in prev:
                    continue
                total += 1
                candidate = prev | {nxt}
                if decodable(candidate):
                    recoverable_now.add(candidate)
                else:
                    fatal += 1
        q.append(fatal / total if total else 1.0)
        if not recoverable_now:
            break
        recoverable_prev = recoverable_now
    if abs(q[-1] - 1.0) > 1e-12:
        q.append(1.0)
    return q


def mttdl_group(params: ReliabilityParams) -> float:
    """Expected hours to data loss of one placement group.

    Computed with the quasi-stationary renewal method standard in storage
    reliability analysis: the recoverable states form a birth-death chain
    whose stationary distribution weights the (rare) absorption flux,

        MTTDL = sum_i(pi_i) / sum_i(pi_i * fail_i * q_i),
        pi_0 = 1,  pi_{i+1} = pi_i * fail_i * (1 - q_i) / repair_{i+1}.

    Exact to O(lambda/mu) — and, unlike a direct linear solve, numerically
    stable even when MTTDL exceeds 10^20 hours (the direct system's
    condition number is ~(mu/lambda)^r, far beyond float64).
    """
    q = list(params.fatal_probabilities)
    lam = params.failure_rate
    mu = 1.0 / params.repair_hours
    pi = 1.0
    total_pi = 0.0
    absorb_flux = 0.0
    for i, q_i in enumerate(q):
        fail_rate = max(0, params.n_disks - i) * lam
        total_pi += pi
        absorb_flux += pi * fail_rate * q_i
        repair_next = (i + 1) * mu
        pi = pi * fail_rate * (1.0 - q_i) / repair_next
    if absorb_flux <= 0:
        return float("inf")
    return total_pi / absorb_flux


def system_mttdl(params: ReliabilityParams, n_groups: int) -> float:
    """MTTDL of a system of independent placement groups (hours)."""
    if n_groups < 1:
        raise ValueError("need at least one group")
    return mttdl_group(params) / n_groups


def annual_durability(mttdl_hours: float) -> float:
    """P(no data loss within one year) = exp(-8760 / MTTDL)."""
    if mttdl_hours <= 0:
        raise ValueError("MTTDL must be positive")
    return math.exp(-HOURS_PER_YEAR / mttdl_hours)


def annual_loss_probability(mttdl_hours: float) -> float:
    """1 - annual durability, computed without catastrophic cancellation."""
    if mttdl_hours <= 0:
        raise ValueError("MTTDL must be positive")
    return -math.expm1(-HOURS_PER_YEAR / mttdl_hours)


def durability_nines(mttdl_hours: float) -> float:
    """The 'number of nines' of annual durability."""
    loss = annual_loss_probability(mttdl_hours)
    if loss <= 0:
        return float("inf")
    return -math.log10(loss)

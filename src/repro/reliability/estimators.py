"""Confidence intervals for Monte-Carlo durability estimates.

The fleet simulator observes *counts* — data losses over simulated
exposure — so the two estimands get the two classic interval families:

* MTTDL: losses are (approximately) a Poisson process at system scale,
  so the loss *count* gets a Garwood interval (exact chi-square bounds,
  here via the Wilson–Hilferty cube approximation: accurate to ~1% for
  df >= 10, and at the small-df lower tail it *under*-shoots the exact
  quantile — widening the interval, the conservative direction) and the
  exposure/count ratio inverts it.  Zero observed losses yields a
  one-sided bound: the MTTDL interval is ``[exposure / upper_count,
  inf)``.
* P(data loss within a horizon): each trial is a Bernoulli draw, so the
  loss fraction gets a Wilson score interval — well-behaved at 0 and 1,
  where the Wald interval collapses.

No SciPy: the only special function needed is the chi-square quantile,
and Wilson–Hilferty reduces it to the normal quantile, which for a fixed
confidence level is a constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.reliability.markov import HOURS_PER_YEAR

#: Two-sided 95%: the only confidence level the estimators ship with —
#: one canonical number beats a half-tested alpha parameter.
Z_95 = 1.959963984540054


def chi2_quantile(p: float, df: float) -> float:
    """Wilson–Hilferty approximation of the chi-square quantile.

    ``(X/df)^(1/3)`` is approximately normal with mean ``1 - 2/(9 df)``
    and variance ``2/(9 df)``; inverting the cube gives the quantile.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p {p} not in (0, 1)")
    if df <= 0:
        raise ValueError(f"df {df} must be positive")
    z = -Z_95 if p < 0.5 else Z_95
    if abs(p - 0.025) > 1e-9 and abs(p - 0.975) > 1e-9:
        raise ValueError("only the 95% level (p = 0.025 / 0.975) is wired")
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * math.sqrt(h)) ** 3


def poisson_count_interval(k: int) -> tuple[float, float]:
    """Garwood 95% interval for a Poisson mean given an observed count."""
    if k < 0:
        raise ValueError("negative count")
    lo = 0.0 if k == 0 else 0.5 * chi2_quantile(0.025, 2 * k)
    hi = 0.5 * chi2_quantile(0.975, 2 * k + 2)
    return lo, hi


def wilson_interval(successes: int, trials: int) -> tuple[float, float]:
    """Wilson score 95% interval for a Bernoulli proportion."""
    if trials < 1:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes outside [0, trials]")
    z2 = Z_95 * Z_95
    p = successes / trials
    denom = 1.0 + z2 / trials
    centre = p + z2 / (2 * trials)
    spread = Z_95 * math.sqrt(p * (1 - p) / trials
                              + z2 / (4 * trials * trials))
    return max(0.0, (centre - spread) / denom), \
        min(1.0, (centre + spread) / denom)


@dataclass(frozen=True)
class MttdlEstimate:
    """System MTTDL from pooled Monte-Carlo exposure."""

    mttdl_hours: float       # inf when no loss was observed
    lo_hours: float          # 95% lower bound (always finite)
    hi_hours: float          # 95% upper bound (inf when n_losses == 0)
    n_losses: int
    exposure_hours: float    # pooled system exposure across trials

    def contains(self, hours: float) -> bool:
        """Whether ``hours`` lies inside the 95% interval."""
        return self.lo_hours <= hours <= self.hi_hours


@dataclass(frozen=True)
class LossProbability:
    """P(at least one data loss within the horizon), across trials."""

    p: float
    lo: float
    hi: float
    n_lost: int
    n_trials: int
    horizon_years: float


def estimate_mttdl(losses: Sequence[int],
                   exposure_years: Sequence[float]) -> MttdlEstimate:
    """Pool per-trial loss counts and exposures into one MTTDL estimate.

    Pooling before dividing (rather than averaging per-trial ratios) is
    the maximum-likelihood estimator for a Poisson rate and stays defined
    when individual trials observe zero losses.
    """
    if len(losses) != len(exposure_years) or not losses:
        raise ValueError("need matching, non-empty losses and exposures")
    k = int(sum(losses))
    hours = float(sum(exposure_years)) * HOURS_PER_YEAR
    if hours <= 0:
        raise ValueError("total exposure must be positive")
    k_lo, k_hi = poisson_count_interval(k)
    return MttdlEstimate(
        mttdl_hours=hours / k if k else float("inf"),
        lo_hours=hours / k_hi,
        hi_hours=hours / k_lo if k_lo > 0 else float("inf"),
        n_losses=k,
        exposure_hours=hours)


def loss_probability(first_loss_years: Sequence[float | None],
                     horizon_years: float) -> LossProbability:
    """P(data loss within ``horizon_years``) from per-trial first-loss
    times (``None`` = the trial never lost data)."""
    if horizon_years <= 0:
        raise ValueError("horizon must be positive")
    n = len(first_loss_years)
    if n < 1:
        raise ValueError("need at least one trial")
    lost = sum(1 for t in first_loss_years
               if t is not None and t <= horizon_years)
    lo, hi = wilson_interval(lost, n)
    return LossProbability(p=lost / n, lo=lo, hi=hi, n_lost=lost,
                           n_trials=n, horizon_years=horizon_years)

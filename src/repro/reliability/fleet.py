"""Fleet-scale Monte-Carlo durability: multi-year event-driven trials.

Where :mod:`repro.reliability.markov` solves one placement group
analytically under independence assumptions, this module *simulates* the
whole fleet on the :mod:`repro.sim` engine — 10k+ disks over ten
simulated years per trial — so the effects the chain cannot express
become measurable:

* disk and node lifetimes (exponential or Weibull wear-out) with
  replacement — a rebuilt disk is a fresh device;
* latent sector errors that stay hidden until the periodic scrub pass
  reaches the disk or a repair read trips over them (whichever comes
  first), turning a repair into one more effective erasure;
* correlated failures — whole-rack bursts and ToR outages built from the
  :class:`~repro.faults.FaultPlan` generators and routed through the
  cluster's rack map, so placement policy decides how many chunks of one
  stripe share a blast radius;
* a risk-aware (RAFI-style) repair queue: with limited repair streams,
  rebuilds are ordered by how close each disk's placement groups sit to
  their fatal-pattern boundary, using the same exact per-code q-vector
  (:func:`~repro.reliability.markov.fatal_probabilities_for_code`) the
  Markov model uses — LRC's asymmetric tolerance is honored, not
  approximated as MDS.

Fatality itself is drawn from the q-vector: when a placement group with
``i`` concurrent failures gains one more, the new pattern is fatal with
probability ``q[i]`` (0-based; beyond the vector it is 1).  On a loss
the group *renews* — bookkeeping resets to the all-healthy state, exactly
the renewal the analytic chain assumes — which is what makes the two
models directly comparable (see ``tests/reliability/test_fleet.py``).

The implementation is pure callbacks on engine timeouts — no generator
processes, no resources — so a trial holds no grants and the invariant
audit is trivially clean.  Every trial draws from one
``numpy.random.Generator`` seeded per trial: results are a pure function
of ``(topology, params, seed)`` and bit-identical across ``--jobs``
fan-out.  Time unit inside a trial: **hours**.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import asdict, dataclass
from typing import Any, Sequence

import numpy as np

from repro.cluster.topology import Cluster, ClusterConfig
from repro.faults import FaultEvent, FaultPlan
from repro.reliability.markov import HOURS_PER_YEAR
from repro.sim import Environment

#: Per-trial cap on individually recorded loss timestamps (counts are
#: never capped; this only bounds the row payload).
MAX_RECORDED_LOSSES = 64


@dataclass(frozen=True)
class FleetParams:
    """Stochastic inputs of one fleet trial (topology lives separately).

    Rates are annualised: ``afr``/``node_afr`` per device-year,
    ``lse_rate`` per disk-year, ``rack_burst_rate``/``tor_outage_rate``
    per fleet-year.  Durations are hours.
    """

    #: q[i] = P(a failure landing on a PG with i existing failures is
    #: fatal) — 0-based, from ``fatal_probabilities_for_code``.  Required:
    #: durability is meaningless without the code's tolerance.
    fatal_probabilities: tuple[float, ...]
    years: float = 10.0
    afr: float = 0.02
    #: Weibull shape of disk lifetimes; 1.0 = exponential (memoryless).
    #: >1 models wear-out; the scale is set so the mean stays 1/afr years.
    weibull_shape: float = 1.0
    node_afr: float = 0.0
    #: Hidden sector errors per disk-year (0 = no latent errors).
    lse_rate: float = 0.0
    #: Full-disk scrub period in hours (0 = scrubbing off): a latent
    #: error is found at the disk's next scrub pass unless a repair read
    #: surfaces it first.
    scrub_interval_hours: float = 336.0
    #: Time to rebuild one disk, uncontended (from the cluster
    #: simulator's calibrated recovery rate, rescaled to fleet capacity).
    repair_hours: float = 24.0
    #: Concurrent rebuilds the fleet sustains (0 = unthrottled).
    repair_streams: int = 0
    #: Order queued rebuilds by fatal-boundary closeness (True) or
    #: arrival (False).
    risk_aware: bool = True
    rack_burst_rate: float = 0.0
    #: Fraction of the struck rack's nodes a burst takes down.
    burst_node_fraction: float = 1.0
    burst_spread_hours: float = 0.05
    tor_outage_rate: float = 0.0
    tor_outage_hours: float = 24.0
    #: Rebuilds whose disk shares a rack with an active outage stretch by
    #: this factor (decided at rebuild start).
    tor_repair_factor: float = 4.0

    def __post_init__(self):
        q = tuple(float(x) for x in self.fatal_probabilities)
        object.__setattr__(self, "fatal_probabilities", q)
        if not q or abs(q[-1] - 1.0) > 1e-12:
            raise ValueError("fatal probabilities must end at 1.0")
        if any(not 0.0 <= x <= 1.0 for x in q):
            raise ValueError("fatal probabilities must be in [0, 1]")
        if self.years <= 0 or self.afr <= 0 or self.repair_hours <= 0:
            raise ValueError("years, afr and repair_hours must be positive")
        if self.weibull_shape <= 0:
            raise ValueError("weibull_shape must be positive")
        if min(self.node_afr, self.lse_rate, self.rack_burst_rate,
               self.tor_outage_rate, self.scrub_interval_hours) < 0:
            raise ValueError("rates and intervals must be >= 0")
        if self.repair_streams < 0:
            raise ValueError("repair_streams must be >= 0 (0 = unthrottled)")
        if not 0.0 < self.burst_node_fraction <= 1.0:
            raise ValueError("burst_node_fraction must be in (0, 1]")
        if self.burst_spread_hours < 0 or self.tor_outage_hours <= 0:
            raise ValueError("invalid burst/outage durations")
        if self.tor_repair_factor < 1.0:
            raise ValueError("tor_repair_factor must be >= 1")

    def to_doc(self) -> dict[str, Any]:
        """JSON-safe dict (scenario parameters, cache keys)."""
        doc = asdict(self)
        doc["fatal_probabilities"] = list(self.fatal_probabilities)
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "FleetParams":
        doc = dict(doc)
        doc["fatal_probabilities"] = tuple(doc["fatal_probabilities"])
        return cls(**doc)


@dataclass(frozen=True)
class TrialResult:
    """One trial's outcome; everything JSON-safe and row-friendly."""

    years: float
    n_disks: int
    n_pgs: int
    n_losses: int
    #: Sim hours of each loss, capped at MAX_RECORDED_LOSSES entries.
    loss_hours: tuple[float, ...]
    first_loss_hours: float | None
    disk_failures: int
    node_failures: int
    rack_bursts: int
    tor_outages: int
    lse_arrivals: int
    lse_scrubbed: int
    lse_surfaced: int
    repairs_completed: int
    repair_wait_hours: float
    peak_damaged_pgs: int

    @property
    def disk_years(self) -> float:
        """Simulated disk-years of exposure (the bench throughput unit)."""
        return self.years * self.n_disks

    @property
    def first_loss_years(self) -> float | None:
        if self.first_loss_hours is None:
            return None
        return self.first_loss_hours / HOURS_PER_YEAR


def independent_pgs(n_groups: int, group_size: int) -> list[tuple[int, ...]]:
    """Disjoint placement groups — the Markov chain's independence
    assumption, made literal for cross-validation configs."""
    if n_groups < 1 or group_size < 2:
        raise ValueError("need n_groups >= 1 and group_size >= 2")
    return [tuple(range(g * group_size, (g + 1) * group_size))
            for g in range(n_groups)]


class _Trial:
    """Mutable per-trial state (arrays indexed by disk id)."""

    __slots__ = (
        "failed", "latent", "disk_gen", "lse_gen", "scrub_phase",
        "damaged", "outages", "queue", "queued", "queue_ver", "enqueued_at",
        "seq", "active_repairs", "n_losses", "loss_hours", "first_loss",
        "disk_failures", "node_failures", "rack_bursts", "tor_outages",
        "lse_arrivals", "lse_scrubbed", "lse_surfaced",
        "repairs_completed", "repair_wait", "peak_damaged")

    def __init__(self, n_disks: int):
        self.failed = bytearray(n_disks)
        self.latent = bytearray(n_disks)
        self.disk_gen = [0] * n_disks   # invalidates stale wear-out timers
        self.lse_gen = [0] * n_disks    # invalidates stale scrub timers
        self.scrub_phase: np.ndarray | None = None
        self.damaged: dict[int, set[int]] = {}   # pg -> failed members
        self.outages: dict[int, int] = {}        # rack -> active outages
        self.queue: list[tuple] = []             # rebuild heap
        self.queued: set[int] = set()
        self.queue_ver: dict[int, int] = {}
        self.enqueued_at: dict[int, float] = {}
        self.seq = 0
        self.active_repairs = 0
        self.n_losses = 0
        self.loss_hours: list[float] = []
        self.first_loss: float | None = None
        self.disk_failures = 0
        self.node_failures = 0
        self.rack_bursts = 0
        self.tor_outages = 0
        self.lse_arrivals = 0
        self.lse_scrubbed = 0
        self.lse_surfaced = 0
        self.repairs_completed = 0
        self.repair_wait = 0.0
        self.peak_damaged = 0


class FleetSim:
    """A fleet topology ready to run durability trials.

    The topology (placement groups, rack map) is fixed at construction;
    :meth:`run_trial` takes the stochastic :class:`FleetParams` and a
    seed, so one ``FleetSim`` serves a whole repair-speed sweep.
    """

    def __init__(self, pgs: Sequence[Sequence[int]], n_disks: int,
                 config: ClusterConfig | None = None, obs=None):
        if n_disks < 2:
            raise ValueError("need at least two disks")
        self.n_disks = n_disks
        self.config = config
        self.obs = obs
        self.pg_members: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(d) for d in pg) for pg in pgs)
        if not self.pg_members:
            raise ValueError("need at least one placement group")
        pgs_of_disk: list[list[int]] = [[] for _ in range(n_disks)]
        for p, members in enumerate(self.pg_members):
            for d in members:
                if not 0 <= d < n_disks:
                    raise ValueError(f"disk {d} outside the fleet")
                pgs_of_disk[d].append(p)
        self.pgs_of_disk = tuple(tuple(ps) for ps in pgs_of_disk)
        #: P(a rebuild's read pass touches a given helper's latent error):
        #: the read covers the one damaged PG out of the pg-count PGs the
        #: helper's data is spread over.
        self.surface_prob = tuple(
            1.0 / len(ps) if ps else 0.0 for ps in pgs_of_disk)
        #: Racks a disk's rebuild traffic can touch: its own plus every
        #: rack of every PG peer (None without a rack map).
        self.disk_racks: tuple[tuple[int, ...], ...] | None = None
        if config is not None and config.n_racks > 1:
            racks: list[set[int]] = [set() for _ in range(n_disks)]
            for members in self.pg_members:
                span = {config.rack_of(config.node_of(d)) for d in members}
                for d in members:
                    racks[d].update(span)
            self.disk_racks = tuple(tuple(sorted(r)) for r in racks)

    @classmethod
    def from_cluster(cls, config: ClusterConfig, obs=None) -> "FleetSim":
        """Enumerate the fleet's PGs with the config's placement policy."""
        cluster = Cluster(config)
        return cls([pg.disk_ids for pg in cluster.pgs], config.n_disks,
                   config=config, obs=obs)

    @property
    def n_pgs(self) -> int:
        return len(self.pg_members)

    # ------------------------------------------------------------------
    def run_trial(self, params: FleetParams, seed) -> TrialResult:
        """One independent trial; pure function of (topology, params, seed)."""
        if params.rack_burst_rate > 0 or params.tor_outage_rate > 0:
            if self.config is None or self.config.n_racks < 2:
                raise ValueError(
                    "rack bursts / ToR outages need a multi-rack config")
        rng = np.random.default_rng(seed)
        obs = self.obs
        hooks = obs.engine_hooks if obs is not None else None
        env = Environment(trace_hooks=hooks)
        st = _Trial(self.n_disks)
        horizon = params.years * HOURS_PER_YEAR
        q = params.fatal_probabilities

        counter = obs.metrics.counter if obs is not None else None
        losses_c = counter("fleet.data_losses") if counter else None
        failures_c = counter("fleet.disk_failures") if counter else None
        timeline = getattr(obs, "timeline", None) if obs is not None else None
        flightrec = getattr(obs, "flightrec", None) \
            if obs is not None else None

        def q_at(i: int) -> float:
            return q[i] if i < len(q) else 1.0

        # -- lifetimes ------------------------------------------------
        mean_h = HOURS_PER_YEAR / params.afr
        shape = params.weibull_shape
        scale_h = mean_h / math.gamma(1.0 + 1.0 / shape)

        def draw_lifetime() -> float:
            if shape == 1.0:
                return float(rng.exponential(mean_h))
            return float(rng.weibull(shape)) * scale_h

        def schedule_wearout(d: int) -> None:
            gen = st.disk_gen[d]
            t = env.timeout(draw_lifetime())

            def wear_out(_event, d=d, gen=gen):
                if st.disk_gen[d] == gen and not st.failed[d]:
                    st.disk_failures += 1
                    if failures_c is not None:
                        failures_c.inc()
                    fail_disk(d)
            t.callbacks.append(wear_out)

        # -- failure / fatality ---------------------------------------
        def fail_disk(d: int) -> None:
            if st.failed[d]:
                return
            st.failed[d] = 1
            st.disk_gen[d] += 1
            if st.latent[d]:        # dies with its hidden errors
                st.latent[d] = 0
                st.lse_gen[d] += 1
            for p in self.pgs_of_disk[d]:
                s = st.damaged.get(p)
                i = len(s) if s is not None else 0
                if rng.random() < q_at(i):
                    record_loss(p, i + 1)
                    if s is not None:
                        st.damaged.pop(p)
                    continue
                if s is None:
                    s = st.damaged[p] = set()
                    if len(st.damaged) > st.peak_damaged:
                        st.peak_damaged = len(st.damaged)
                elif params.risk_aware and params.repair_streams:
                    # RAFI: the PG moved closer to its boundary; requeue
                    # its other pending rebuilds at the new priority.
                    for other in sorted(s):
                        if other in st.queued:
                            push_rebuild(other)
                s.add(d)
            enqueue_rebuild(d)

        def record_loss(p: int, failures: int) -> None:
            now = env.now
            st.n_losses += 1
            if st.first_loss is None:
                st.first_loss = now
            if len(st.loss_hours) < MAX_RECORDED_LOSSES:
                st.loss_hours.append(now)
            if losses_c is not None:
                losses_c.inc()
            if timeline is not None:
                timeline.mark(env, "fleet:data_loss", pg=p,
                              failures=failures)
            if flightrec is not None:
                flightrec.incident("data_loss", pg=p, failures=failures,
                                   hours=now, losses=st.n_losses)

        # -- repair queue ---------------------------------------------
        def rebuild_key(d: int) -> tuple:
            st.seq += 1
            if not params.risk_aware:
                return (st.seq,)
            worst_q, worst_i = 0.0, 0
            for p in self.pgs_of_disk[d]:
                s = st.damaged.get(p)
                if s is None or d not in s:
                    continue
                i = len(s)      # failures incl. d; next one is the i+1-th
                nxt = q_at(i)
                if (nxt, i) > (worst_q, worst_i):
                    worst_q, worst_i = nxt, i
            return (-worst_q, -worst_i, st.seq)

        def push_rebuild(d: int) -> None:
            ver = st.queue_ver.get(d, 0) + 1
            st.queue_ver[d] = ver
            heapq.heappush(st.queue, (rebuild_key(d), ver, d))

        def enqueue_rebuild(d: int) -> None:
            streams = params.repair_streams
            if not streams or st.active_repairs < streams:
                start_rebuild(d)
                return
            st.queued.add(d)
            st.enqueued_at[d] = env.now
            push_rebuild(d)

        def drain_queue() -> None:
            streams = params.repair_streams
            while st.queue and (not streams or st.active_repairs < streams):
                _key, ver, d = heapq.heappop(st.queue)
                if d not in st.queued or st.queue_ver.get(d) != ver:
                    continue        # stale entry (requeued or started)
                st.queued.discard(d)
                st.repair_wait += env.now - st.enqueued_at.pop(d)
                start_rebuild(d)

        def start_rebuild(d: int) -> None:
            st.active_repairs += 1
            hours = params.repair_hours
            if st.outages and self.disk_racks is not None \
                    and any(st.outages.get(rk) for rk in self.disk_racks[d]):
                hours *= params.tor_repair_factor
            t = env.timeout(hours)

            def complete(_event, d=d):
                finish_rebuild(d)
            t.callbacks.append(complete)

        def finish_rebuild(d: int) -> None:
            st.active_repairs -= 1
            st.repairs_completed += 1
            for p in self.pgs_of_disk[d]:
                s = st.damaged.get(p)
                if s is None or d not in s:
                    continue        # PG renewed by a loss meanwhile
                lost = False
                for h in self.pg_members[p]:
                    # The rebuild's read pass may trip over a helper's
                    # hidden latent error: one more effective erasure at
                    # the worst moment — or, survived, a free repair.
                    if h == d or st.failed[h] or not st.latent[h]:
                        continue
                    if rng.random() >= self.surface_prob[h]:
                        continue
                    st.latent[h] = 0
                    st.lse_gen[h] += 1
                    st.lse_surfaced += 1
                    if rng.random() < q_at(len(s)):
                        record_loss(p, len(s) + 1)
                        st.damaged.pop(p)
                        lost = True
                        break
                if not lost:
                    s.discard(d)
                    if not s:
                        st.damaged.pop(p)
            st.failed[d] = 0        # replacement disk, fresh lifetime
            schedule_wearout(d)
            drain_queue()

        # -- latent sector errors and scrubbing -----------------------
        lse_rate_h = params.lse_rate * self.n_disks / HOURS_PER_YEAR
        scrub = params.scrub_interval_hours
        if lse_rate_h > 0 and scrub > 0:
            st.scrub_phase = rng.uniform(0.0, scrub, self.n_disks)

        def schedule_scrub_discovery(d: int) -> None:
            if scrub <= 0:
                return
            phase = float(st.scrub_phase[d])
            periods = math.floor((env.now - phase) / scrub) + 1
            nxt = phase + periods * scrub
            gen = st.lse_gen[d]
            t = env.timeout(nxt - env.now)

            def discover(_event, d=d, gen=gen):
                if st.lse_gen[d] == gen and st.latent[d]:
                    st.latent[d] = 0
                    st.lse_gen[d] += 1
                    st.lse_scrubbed += 1
                    if timeline is not None:
                        timeline.mark(env, "fleet:scrub", disk=d)
            t.callbacks.append(discover)

        def schedule_next_lse() -> None:
            t = env.timeout(float(rng.exponential(1.0 / lse_rate_h)))

            def arrive(_event):
                st.lse_arrivals += 1
                d = int(rng.integers(self.n_disks))
                if not st.failed[d] and not st.latent[d]:
                    st.latent[d] = 1
                    schedule_scrub_discovery(d)
                schedule_next_lse()
            t.callbacks.append(arrive)

        # -- correlated failures --------------------------------------
        def schedule_next_burst(rate_h: float) -> None:
            t = env.timeout(float(rng.exponential(1.0 / rate_h)))

            def burst(_event):
                config = self.config
                st.rack_bursts += 1
                rack = int(rng.integers(config.n_racks))
                nodes = list(config.nodes_in_rack(rack))
                n_pick = max(1, int(round(
                    params.burst_node_fraction * len(nodes))))
                order = rng.permutation(len(nodes))[:n_pick]
                chosen = sorted(nodes[i] for i in order)
                plan = FaultPlan.rack_burst(
                    chosen, config.disks_per_node,
                    seed=int(rng.integers(1 << 31)), at=env.now,
                    spread=params.burst_spread_hours, kind="disk_crash")
                for ev in plan.timed_events:
                    bt = env.timeout(ev.at - env.now)

                    def strike(_e, disk=ev.disk):
                        fail_disk(disk)
                    bt.callbacks.append(strike)
                if timeline is not None:
                    timeline.mark(env, "fleet:burst", rack=rack,
                                  nodes=len(chosen),
                                  disks=len(plan.timed_events))
                schedule_next_burst(rate_h)
            t.callbacks.append(burst)

        def schedule_next_outage(rate_h: float) -> None:
            t = env.timeout(float(rng.exponential(1.0 / rate_h)))

            def outage(_event):
                config = self.config
                st.tor_outages += 1
                rack = int(rng.integers(config.n_racks))
                event = FaultEvent("tor_slow", at=env.now, rack=rack,
                                   factor=params.tor_repair_factor,
                                   duration=params.tor_outage_hours)
                st.outages[rack] = st.outages.get(rack, 0) + 1
                end = env.timeout(params.tor_outage_hours)

                def clear(_e, rack=rack):
                    st.outages[rack] -= 1
                end.callbacks.append(clear)
                if timeline is not None:
                    timeline.mark(env, "fleet:tor_outage", **event.to_doc())
                schedule_next_outage(rate_h)
            t.callbacks.append(outage)

        def schedule_next_node_crash(rate_h: float) -> None:
            t = env.timeout(float(rng.exponential(1.0 / rate_h)))

            def crash(_event):
                st.node_failures += 1
                node = int(rng.integers(n_nodes))
                first = node * disks_per_node
                for d in range(first, first + disks_per_node):
                    fail_disk(d)
                schedule_next_node_crash(rate_h)
            t.callbacks.append(crash)

        # -- arm and run ----------------------------------------------
        for d in range(self.n_disks):
            schedule_wearout(d)
        if lse_rate_h > 0:
            schedule_next_lse()
        if params.rack_burst_rate > 0:
            schedule_next_burst(params.rack_burst_rate / HOURS_PER_YEAR)
        if params.tor_outage_rate > 0:
            schedule_next_outage(params.tor_outage_rate / HOURS_PER_YEAR)
        if params.node_afr > 0:
            if self.config is not None:
                n_nodes = self.config.n_nodes
                disks_per_node = self.config.disks_per_node
            else:
                n_nodes, disks_per_node = self.n_disks, 1
            schedule_next_node_crash(
                params.node_afr * n_nodes / HOURS_PER_YEAR)
        env.run(until=horizon)

        return TrialResult(
            years=params.years,
            n_disks=self.n_disks,
            n_pgs=self.n_pgs,
            n_losses=st.n_losses,
            loss_hours=tuple(st.loss_hours),
            first_loss_hours=st.first_loss,
            disk_failures=st.disk_failures,
            node_failures=st.node_failures,
            rack_bursts=st.rack_bursts,
            tor_outages=st.tor_outages,
            lse_arrivals=st.lse_arrivals,
            lse_scrubbed=st.lse_scrubbed,
            lse_surfaced=st.lse_surfaced,
            repairs_completed=st.repairs_completed,
            repair_wait_hours=st.repair_wait,
            peak_damaged_pgs=st.peak_damaged)

    def run_trials(self, params: FleetParams, seed: int,
                   n_trials: int) -> list[TrialResult]:
        """Independent trials with per-trial seeds spawned from ``seed``."""
        if n_trials < 1:
            raise ValueError("need at least one trial")
        children = np.random.SeedSequence(seed).spawn(n_trials)
        return [self.run_trial(params, child) for child in children]

#!/usr/bin/env python
"""The regenerating-code design space around the paper's choice of Clay.

Places the paper's MSR choice on the storage/repair-bandwidth trade-off by
exercising all five codes in this repository on real bytes:

* RS — MDS storage, worst repair (reads k full chunks),
* LRC — locality instead of optimal bandwidth, not MDS,
* Hitchhiker — 35% repair savings with alpha = 2, still MDS,
* Clay (MSR) — MDS storage *and* optimal (n-1)/q repair,
* product-matrix MBR — minimum possible repair bandwidth, extra storage,

then shows ECPipe's orthogonal trick (repair *pipelining*) in a
network-bound setting, and a multi-failure recovery — the case where even
Clay must fall back to full decode.

Run:  python examples/regenerating_tradeoffs.py
"""

import numpy as np

from repro.codes import (
    ClayCode,
    HitchhikerCode,
    LRCCode,
    ProductMatrixMBR,
    RSCode,
    extract_reads,
)
from repro.core.ecpipe import ecpipe_repair_time, star_repair_time

MB = 1 << 20


def main() -> None:
    rng = np.random.default_rng(0)

    print("Single-failure repair cost on real bytes (k=10, r=4, verified):")
    print(f"  {'code':22s} {'storage':>8s} {'repair reads':>13s} {'alpha':>6s}")
    for code in (RSCode(10, 4), LRCCode(10, 2, 2), HitchhikerCode(10, 4),
                 ClayCode(10, 4)):
        chunk = 256 * code.alpha
        data = [rng.integers(0, 256, chunk, dtype=np.uint8) for _ in range(10)]
        stripe = code.encode_stripe(data)
        plan = code.repair_plan(0, chunk)
        reads = extract_reads(plan, dict(enumerate(stripe)))
        assert np.array_equal(code.repair(0, reads, chunk), stripe[0])
        print(f"  {code.name:22s} {code.storage_overhead:7.0%} "
              f"{plan.read_traffic_ratio():11.2f}x {code.alpha:6d}")

    mbr = ProductMatrixMBR(14, 10, 13)
    data = rng.integers(0, 256, mbr.B * 64, dtype=np.uint8)
    chunks = mbr.encode(data)
    helpers = {h: mbr.helper_symbol(h, 0, chunks[h]) for h in range(1, 14)}
    assert np.array_equal(mbr.repair(0, helpers), chunks[0])
    assert np.array_equal(mbr.decode({i: chunks[i] for i in range(10)}), data)
    print(f"  {mbr.name:22s} {mbr.storage_overhead:7.0%} "
          f"{mbr.repair_traffic_symbols / mbr.alpha:11.2f}x {mbr.alpha:6d}")
    print("\nMSR (Clay) keeps MDS storage with near-minimum repair — the paper's"
          "\npick; MBR halves repair again but pays 53% extra storage (§2.2).")

    print("\nECPipe (repair *pipelining*, §7) in a network-bound regime"
          " (64 MB strip, 1 Gbps links):")
    bw = 125 * MB
    star = star_repair_time(64 * MB, 10, bw)
    for packet in (64 * 1024, 4 * MB, 64 * MB):
        t = ecpipe_repair_time(64 * MB, 10, bw, packet)
        label = f"{packet // 1024}KB" if packet < MB else f"{packet // MB}MB"
        print(f"  packet {label:>6s}: {t:5.2f}s vs star {star:.2f}s "
              f"({star / t:.1f}x)")
    print("ECPipe needs addition-associative codes, so it cannot be combined"
          "\nwith Clay — which is why the paper treats them as alternatives.")

    print("\nMulti-failure: Clay loses its sub-chunk advantage (full decode):")
    code = ClayCode(10, 4)
    chunk = code.alpha
    data = [rng.integers(0, 256, chunk, dtype=np.uint8) for _ in range(10)]
    stripe = code.encode_stripe(data)
    erased = [2, 7]
    available = {i: c for i, c in enumerate(stripe) if i not in erased}
    decoded = code.decode(available, erased, chunk)
    for f in erased:
        assert np.array_equal(decoded[f], stripe[f])
    read_bytes = sum(c.size for c in available.values())
    print(f"  repairing 2 chunks read {read_bytes // chunk} full chunks "
          f"({read_bytes / (2 * chunk):.1f}x per lost chunk vs 3.25x "
          f"for a single failure) — but >98% of failures are single (§2).")


if __name__ == "__main__":
    main()

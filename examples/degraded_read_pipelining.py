#!/usr/bin/env python
"""Degraded-read pipelining: why chunk sizes should grow geometrically.

Reproduces the reasoning of the paper's Figures 3 and 8 with the analytic
pipeline model, then confirms it on the full RCStor simulator: compare a
degraded read of one object under fixed-small, fixed-large, and geometric
chunking, and show the repair/transfer timeline of the geometric case.

Run:  python examples/degraded_read_pipelining.py
"""

import numpy as np

from repro import ClayCode, ClusterConfig, GeometricLayout, ContiguousLayout, RCStor
from repro.core import GeometricPartitioner, PipelineStep, degraded_read_time
from repro.core.pipeline import pipeline_timeline, unpipelined_read_time
from repro.trace import W1

MB = 1 << 20
CLIENT_BW = 125 * MB        # 1 Gbps edge


def steps_for(chunk_sizes, repair_bw):
    return [PipelineStep(size / repair_bw, size / CLIENT_BW, f"{size // MB}MB")
            for size in chunk_sizes]


def main() -> None:
    object_size = 128 * MB

    # ------------------------------------------------------------------
    # Analytic comparison (Figure 8), in both pipelining regimes
    # ------------------------------------------------------------------
    geometric = [c.size for c in
                 GeometricPartitioner(4 * MB, 2).partition(object_size).chunks()]
    fixed_small = [4 * MB] * (object_size // (4 * MB))
    fixed_large = [128 * MB]
    for repair_bw in (90 * MB, 180 * MB):
        regime = ("repair-bound (Fig. 8 case 2)" if repair_bw < CLIENT_BW
                  else "transfer-bound (Fig. 8 case 1)")
        print(f"Degraded read of a {object_size // MB} MB object at 1 Gbps, "
              f"repair at {repair_bw // MB} MB/s — {regime}:")
        for name, chunks in [("one huge chunk", fixed_large),
                             ("fixed 4MB chunks", fixed_small),
                             ("geometric 4MB..64MB", geometric)]:
            steps = steps_for(chunks, repair_bw)
            t = degraded_read_time(steps)
            serial = unpipelined_read_time(steps)
            print(f"  {name:22s} {t * 1000:6.0f} ms "
                  f"(no pipelining: {serial * 1000:.0f} ms, "
                  f"saves {100 * (1 - t / serial):.0f}%)")
        print()
    print("Fixed 4MB chunks pipeline best but wreck recovery throughput;"
          "\ngeometric chunks give up little pipelining while most bytes land"
          "\nin large chunks — the paper's resolution of the dilemma.")

    print("\nTimeline of the geometric pipeline (repair ‖ transfer, 90 MB/s):")
    for step in pipeline_timeline(steps_for(geometric, 90 * MB)):
        print(f"  {step.label:>5s}  repair {step.repair_start * 1000:6.0f}-"
              f"{step.repair_end * 1000:6.0f} ms   transfer "
              f"{step.transfer_start * 1000:6.0f}-{step.transfer_end * 1000:6.0f} ms")

    # ------------------------------------------------------------------
    # The same effect on the full simulator
    # ------------------------------------------------------------------
    print("\nFull RCStor simulation (idle cluster, mean of 12 degraded reads):")
    rng = np.random.default_rng(0)
    sizes = W1.sample_sizes(rng, 1200)
    config = ClusterConfig(n_pgs=48)
    for name, layout in [
            ("Geo-4M", GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB)),
            ("Con-256M", ContiguousLayout(256 * MB))]:
        system = RCStor(config, layout, ClayCode(10, 4), name=name)
        system.ingest(sizes)
        requests = system.catalog.objects[:12]
        results = system.measure_degraded_reads(requests, None)
        normal = system.measure_normal_reads(requests)
        mean = float(np.mean([r.total_time for r in results]))
        print(f"  {name:9s} degraded {mean * 1000:6.0f} ms   "
              f"normal {float(np.mean(normal)) * 1000:6.0f} ms   "
              f"ratio {mean / float(np.mean(normal)):.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: Geometric Partitioning and Clay-code repair on real bytes.

Walks the paper's core ideas end to end:

1. partition an object with Algorithm 1 (including the front cut),
2. encode a stripe with the Clay(10,4) MSR code,
3. repair a lost chunk reading only the optimal 3.25x (vs RS's 10x),
4. show the Figure 2 fragmentation cases the chunk-size dilemma comes from.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClayCode, GeometricPartitioner, RSCode, extract_reads

MB = 1 << 20


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Geometric Partitioning (Algorithm 1)
    # ------------------------------------------------------------------
    partitioner = GeometricPartitioner(s0=4 * MB, q=2)
    size = int(73.5 * MB)
    part = partitioner.partition(size)
    print(f"Partitioning a {size / MB:.1f} MB object with s0=4MB, q=2:")
    print(f"  front cut (RS-coded small-size-bucket): {part.front / MB:.1f} MB")
    chunk_list = " + ".join(f"{c.size // MB}MB" for c in part.chunks())
    print(f"  geometric chunks: {chunk_list}")
    print(f"  adjacent-size ratio never exceeds q: {part.max_adjacent_ratio:.0f}")

    # ------------------------------------------------------------------
    # 2. Encode a Clay(10,4) stripe with real bytes
    # ------------------------------------------------------------------
    code = ClayCode(10, 4)
    chunk_size = code.alpha * 16  # 16 bytes per sub-chunk
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, chunk_size, dtype=np.uint8)
            for _ in range(code.k)]
    stripe = code.encode_stripe(data)
    print(f"\nClay(10,4): alpha={code.alpha} sub-chunks per chunk, "
          f"d={code.d} helpers, storage overhead {code.storage_overhead:.0%}")

    # ------------------------------------------------------------------
    # 3. Optimal repair: read only beta/alpha from each survivor
    # ------------------------------------------------------------------
    failed = 3
    plan = code.repair_plan(failed, chunk_size)
    reads = extract_reads(plan, {i: c for i, c in enumerate(stripe)})
    repaired = code.repair(failed, reads, chunk_size)
    assert np.array_equal(repaired, stripe[failed])
    rs_plan = RSCode(10, 4).repair_plan(failed, chunk_size)
    print(f"repairing node D{failed + 1}:")
    print(f"  Clay reads {plan.total_read_bytes} bytes "
          f"({plan.read_traffic_ratio():.2f}x the lost chunk)")
    print(f"  RS would read {rs_plan.total_read_bytes} bytes "
          f"({rs_plan.read_traffic_ratio():.0f}x) — "
          f"{rs_plan.total_read_bytes / plan.total_read_bytes:.1f}x more")

    # ------------------------------------------------------------------
    # 4. The fragmentation cases behind the chunk-size dilemma (Figure 2)
    # ------------------------------------------------------------------
    print("\nFigure 2 repair patterns (per helper):")
    for node, case in ((0, 1), (5, 2), (10, 3), (13, 4)):
        p = code.repair_plan(node, chunk_size).coalesced()
        helper = p.helper_nodes[0]
        ios = p.io_count_per_node()[helper]
        seg = p.segments_for_node(helper)[0]
        print(f"  case {case}: {ios:3d} discontinuous reads of "
              f"{seg.length // (chunk_size // code.alpha):3d} sub-chunks")
    print("\nLarge chunks amortise these seeks (good recovery); small chunks"
          "\nstart the degraded-read pipeline sooner — Geometric Partitioning"
          "\nuses both: small chunks first, then geometrically larger ones.")


if __name__ == "__main__":
    main()

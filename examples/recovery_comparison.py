#!/usr/bin/env python
"""Recovery-throughput shoot-out: Clay+Geometric vs RS, LRC, and stripes.

A miniature of the paper's Figure 9: ingest a W1-like workload into RCStor
under several (layout, code) schemes, fail one disk, recover all its
placement groups, and compare recovery time, per-disk bandwidth, and
degraded-read latency.

Run:  python examples/recovery_comparison.py
"""

import numpy as np

from repro.experiments.common import (
    W1_SETTING,
    build_system,
    cluster_config,
    nearest_candidates,
    request_size_targets,
    sample_workload,
)

MB = 1 << 20
GB = 1 << 30

SCHEMES = ["Geo-4M", "Con-256M", "Stripe", "Stripe-Max", "RS", "LRC", "HH"]


def main() -> None:
    n_objects = 2000
    sizes = sample_workload(W1_SETTING, n_objects, seed=0)
    config = cluster_config(W1_SETTING, n_objects)
    targets = request_size_targets(W1_SETTING, sizes, 12, seed=1)
    print(f"Workload: {n_objects} objects, {sizes.sum() / GB:.0f} GiB over "
          f"{config.n_disks} simulated HDDs ({config.n_pgs} placement groups)\n")
    print(f"{'scheme':11s} {'recovery':>9s} {'rate':>10s} {'disk bw':>9s} "
          f"{'degraded':>9s}")
    baseline = None
    for scheme in SCHEMES:
        system = build_system(scheme, W1_SETTING, config)
        system.ingest(sizes)
        report = system.run_recovery(failed_disk=0)
        requests = nearest_candidates(system.catalog.objects, targets)
        degraded = system.measure_degraded_reads(requests, None)
        mean_deg = float(np.mean([r.total_time for r in degraded]))
        per_byte = report.makespan / report.repaired_bytes
        if scheme == "Geo-4M":
            baseline = per_byte
        rel = f"({per_byte / baseline:.2f}x Geo-4M)" if baseline else ""
        print(f"{scheme:11s} {report.makespan:8.1f}s "
              f"{report.recovery_rate / MB:7.0f}MB/s "
              f"{report.disk_bandwidth / MB:6.1f}MB/s "
              f"{mean_deg * 1000:7.0f}ms  {rel}")
    print("\nThe paper's headline — Clay with Geometric Partitioning recovers"
          "\n~1.85x faster than RS and ~1.30x faster than LRC while keeping"
          "\ndegraded reads at ~1.02x normal reads — shows the same shape here.")


if __name__ == "__main__":
    main()

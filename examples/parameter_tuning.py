#!/usr/bin/env python
"""Tuning s0 and q by workload sampling (§4.4).

Grid-searches Geometric Partitioning's two parameters over a sample of the
W1 trace, scoring each candidate on the structural metrics (average chunk
size — a recovery-throughput proxy — and RS-coded small-size-bucket share)
plus an analytic degraded-read evaluator, then prints the Pareto front.

Run:  python examples/parameter_tuning.py
"""

from repro.cluster import DEFAULT_CODEC, HDD, ProfileCache
from repro.codes import ClayCode
from repro.core.pipeline import PipelineStep, degraded_read_time
from repro.core.tuning import grid_search, pareto_front
from repro.trace import W1

import numpy as np

MB = 1 << 20
CLIENT_BW = 125 * MB

_code = ClayCode(10, 4)
_cache = ProfileCache(_code)


def degraded_read_evaluator(layout, size: int) -> float:
    """Analytic pipelined degraded-read time of one object."""
    part = layout.partitioner.partition(size)
    steps = []
    if part.front:
        steps.append(PipelineStep(part.front * 10 / (150 * MB),
                                  part.front / CLIENT_BW))
    for chunk in part.chunks():
        profile = _cache.get(0, max(_code.alpha, chunk.size))
        read = max(HDD.read_time(h.n_ios, h.nbytes, span=h.span)
                   for h in profile.helpers)
        repair = read + DEFAULT_CODEC.regenerate_time(chunk.size) + 0.002
        steps.append(PipelineStep(repair, chunk.size / CLIENT_BW))
    return degraded_read_time(steps)


def main() -> None:
    rng = np.random.default_rng(7)
    sample = [int(s) for s in W1.sample_sizes(rng, 300)]
    points = grid_search(sample,
                         s0_candidates=[1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB],
                         q_candidates=[2, 3, 4],
                         max_chunk_size=256 * MB,
                         evaluator=degraded_read_evaluator)
    print(f"{'s0':>5s} {'q':>2s} {'avg chunk':>10s} {'small-bucket':>13s} "
          f"{'chunks/obj':>11s} {'degraded read':>14s}")
    for p in points:
        print(f"{p.s0 // MB:4d}M {p.q:2d} {p.average_chunk_size / MB:8.1f}MB "
              f"{p.small_bucket_share * 100:12.1f}% "
              f"{p.average_chunk_count:11.1f} "
              f"{p.mean_degraded_read_time * 1000:12.0f}ms")
    front = pareto_front(points)
    print("\nPareto-optimal candidates (chunk size vs degraded read):")
    for p in front:
        print(f"  s0={p.s0 // MB}MB q={p.q}: "
              f"{p.average_chunk_size / MB:.1f}MB avg chunk, "
              f"{p.mean_degraded_read_time * 1000:.0f}ms degraded read")
    print("\nThe paper picks s0=4MB, q=2 for W1 — a balanced point on this front.")


if __name__ == "__main__":
    main()

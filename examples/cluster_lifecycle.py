#!/usr/bin/env python
"""A day in the life of RCStor: put → export → fail → serve → recover.

Walks the §5 system end to end on the simulated cluster:

1. clients put objects (triple-replicated staging, F4-style),
2. background batch export moves them into erasure-coded buckets,
3. the directory's index metadata is built (~40 bytes/object),
4. a disk dies: degraded reads keep serving during recovery, protected by
   the §5.1 priority lanes,
5. the disk is recovered through the weighted global task queue,
6. and the durability model says what that recovery speed buys.

Run:  python examples/cluster_lifecycle.py
"""

import numpy as np

from repro.cluster import ClusterConfig, RCStor, build_indexes
from repro.cluster.disk import BACKGROUND
from repro.cluster.ingestion import measure_puts, run_batch_export
from repro.codes import ClayCode
from repro.core import GeometricLayout
from repro.experiments.durability import AFR
from repro.reliability import ReliabilityParams, system_mttdl
from repro.reliability.markov import durability_nines, mds_fatal_probabilities
from repro.trace import W1

MB = 1 << 20
GB = 1 << 30


def main() -> None:
    rng = np.random.default_rng(7)
    config = ClusterConfig(n_pgs=64)
    system = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                    ClayCode(10, 4))
    sizes = W1.sample_sizes(rng, 1500)
    print(f"Cluster: {config.n_nodes} nodes x {config.disks_per_node} HDDs, "
          f"{config.n_pgs} placement groups, Clay(10,4) + Geo-4M\n")

    # 1-2. Put path: staging replicas, then batch export.
    puts = measure_puts(system, sizes[:40])
    export = run_batch_export(system, sizes[:40])
    print(f"1. puts: mean {puts.mean_latency * 1000:.0f} ms "
          f"(3-way staged); batch export at "
          f"{export.export_rate / MB:.0f} MB/s, "
          f"I/O amplification {export.io_amplification:.2f}x")

    # Ingest the full population into the coded layout.
    system.ingest(sizes)
    cat = system.catalog
    print(f"2. ingested {len(cat.objects)} objects "
          f"({cat.total_bytes / GB:.0f} GiB); small-size-buckets hold "
          f"{cat.small_bucket_share:.1%} of capacity")

    # 3. Directory metadata.
    indexes = build_indexes(cat)
    per_obj = sum(i.size_bytes for i in indexes.values()) / len(cat.objects)
    print(f"3. index metadata: {per_obj:.1f} bytes/object "
          f"(paper: ~40), replicated on r+1 disks per PG")

    # 4. Disk failure: serve degraded reads while recovery runs.
    failed = 0
    requests = cat.objects[:10]
    during, report = system.measure_degraded_reads_during_recovery(
        requests, failed, recovery_priority=BACKGROUND)
    idle = system.measure_degraded_reads(requests, None)
    mean_during = float(np.mean([r.total_time for r in during])) * 1000
    mean_idle = float(np.mean([r.total_time for r in idle])) * 1000
    print(f"4. degraded reads during recovery: {mean_during:.0f} ms "
          f"(idle: {mean_idle:.0f} ms) — priority lanes keep users ahead "
          f"of recovery I/O")

    # 5. Recovery outcome.
    print(f"5. recovered {report.repaired_bytes / GB:.1f} GiB in "
          f"{report.makespan:.1f} s ({report.recovery_rate / MB:.0f} MB/s) "
          f"across {report.n_tasks} weighted tasks")

    # 6. What that buys in durability.
    repair_hours = report.makespan / 3600 * (255 * GB / report.repaired_bytes)
    params = ReliabilityParams(14, AFR, repair_hours,
                               mds_fatal_probabilities(4))
    mttdl = system_mttdl(params, n_groups=10_000)
    print(f"6. at paper scale that is a {repair_hours:.2f} h repair window: "
          f"~{durability_nines(mttdl):.0f} nines of annual durability "
          f"for a 10k-PG fleet at {AFR:.0%} AFR")


if __name__ == "__main__":
    main()
